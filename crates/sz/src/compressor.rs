//! Top-level error-bounded compressor (the SZ3 baseline of the paper),
//! exposed through the fallible [`Codec`] trait.

use cfc_tensor::{Field, FieldStats};

use crate::api::{Codec, EncodedStream};
use crate::codec;
use crate::error::CfcError;
use crate::error_bound::ErrorBound;
use crate::huffman::HuffmanTable;
use crate::lattice::QuantLattice;
use crate::lossless;
use crate::predict::{LorenzoPredictor, Predictor, RegressionPredictor};
use crate::quantizer::{EncodedResiduals, QuantizerConfig};
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::stream::{Container, SectionTag};

/// Which local predictor the baseline pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// 1-layer Lorenzo (the paper's baseline configuration).
    Lorenzo,
    /// SZ3-style block regression with the given block edge.
    Regression {
        /// Tile edge length (SZ3 default: 6).
        block: usize,
    },
}

/// An error-bounded prediction-based lossy compressor.
#[derive(Debug, Clone, Copy)]
pub struct SzCompressor {
    /// Error-bound mode and magnitude.
    pub bound: ErrorBound,
    /// Residual quantizer configuration.
    pub quantizer: QuantizerConfig,
    /// Local predictor selection.
    pub predictor: PredictorKind,
}

impl SzCompressor {
    /// Baseline configuration used throughout the paper: Lorenzo predictor,
    /// default radius, relative error bound.
    pub fn baseline(rel_eb: f64) -> Self {
        SzCompressor {
            bound: ErrorBound::Relative(rel_eb),
            quantizer: QuantizerConfig::default(),
            predictor: PredictorKind::Lorenzo,
        }
    }

    /// Compress a prequantized lattice with an arbitrary (causal) predictor,
    /// returning the container for callers that append extra sections — this
    /// is the entry point the cross-field pipeline in `cfc-core` builds on.
    pub fn compress_lattice(
        &self,
        lattice: &QuantLattice,
        predictor: &dyn Predictor,
        eb: f64,
    ) -> (Container, EncodedResiduals) {
        assert!(
            predictor.is_causal(),
            "refusing to encode with a non-causal predictor"
        );
        let mut container = Container::new(lattice.shape(), eb, self.quantizer.radius);
        let enc = codec::encode(lattice, predictor, &self.quantizer);
        container.push(SectionTag::Residuals, encode_codes(&enc.codes));
        container.push(SectionTag::Outliers, encode_outliers(&enc.outliers));
        (container, enc)
    }

    /// [`SzCompressor::compress_lattice`] with reusable scratch buffers —
    /// byte-identical output, but residuals/codes/outliers live in
    /// `scratch`, so per-block encode loops stop growing their big
    /// element-proportional buffers after the first block. Returns the
    /// container and the outlier count.
    pub fn compress_lattice_with(
        &self,
        lattice: &QuantLattice,
        predictor: &dyn Predictor,
        eb: f64,
        scratch: &mut EncodeScratch,
    ) -> (Container, usize) {
        assert!(
            predictor.is_causal(),
            "refusing to encode with a non-causal predictor"
        );
        let mut container = Container::new(lattice.shape(), eb, self.quantizer.radius);
        codec::encode_with(lattice, predictor, &self.quantizer, scratch);
        // split borrows: codes/outliers are inputs, payload/lz are staging
        let crate::scratch::EncodeScratch {
            codes,
            outliers,
            payload,
            lz,
            ..
        } = scratch;
        container.push(SectionTag::Residuals, encode_codes_into(codes, payload, lz));
        container.push(
            SectionTag::Outliers,
            encode_outliers_into(outliers, payload, lz),
        );
        (container, scratch.streams().1.len())
    }

    /// Decode a container's residual sections with an arbitrary predictor.
    ///
    /// Fully fallible: missing sections, corrupt payloads, and count
    /// mismatches all return [`CfcError`].
    pub fn decompress_lattice(
        &self,
        container: &Container,
        predictor: &dyn Predictor,
    ) -> Result<QuantLattice, CfcError> {
        self.decompress_lattice_with(container, predictor, &mut DecodeScratch::new())
    }

    /// [`SzCompressor::decompress_lattice`] with reusable scratch buffers:
    /// the lossless payload, residual codes, and outliers decode into
    /// `scratch`, so repeated block decodes through one scratch allocate
    /// only the reconstructed lattice.
    pub fn decompress_lattice_with(
        &self,
        container: &Container,
        predictor: &dyn Predictor,
        scratch: &mut DecodeScratch,
    ) -> Result<QuantLattice, CfcError> {
        let shape = container.shape;
        let quant = QuantizerConfig {
            radius: container.radius,
        };
        let before = scratch.caps();
        let result = (|| {
            try_decode_codes_into(
                container.require_section(SectionTag::Residuals)?,
                shape.len(),
                &mut scratch.payload,
                &mut scratch.codes,
            )?;
            try_decode_outliers_bounded_into(
                container.require_section(SectionTag::Outliers)?,
                shape.len(),
                &mut scratch.payload,
                &mut scratch.outliers,
            )?;
            codec::try_decode(shape, &scratch.codes, &scratch.outliers, predictor, &quant)
        })();
        scratch.track(before);
        result
    }
}

impl Codec for SzCompressor {
    /// Compress one field.
    ///
    /// Fails with [`CfcError::InvalidInput`] on non-finite samples or a
    /// bound that resolves non-positive (e.g. a relative bound on a
    /// constant field) — both detected by `ErrorBound::try_resolve`.
    fn compress(&self, field: &Field) -> Result<EncodedStream, CfcError> {
        self.compress_with(field, &mut EncodeScratch::new())
    }

    /// Decompress a stream produced by [`Codec::compress`].
    ///
    /// Total over arbitrary bytes: corruption anywhere — header, section
    /// table, Huffman payloads, outlier varints, residual replay — returns
    /// `Err`, never panics.
    fn decompress(&self, bytes: &[u8]) -> Result<Field, CfcError> {
        self.decompress_with(bytes, &mut DecodeScratch::new())
    }

    fn name(&self) -> &'static str {
        match self.predictor {
            PredictorKind::Lorenzo => "sz-lorenzo",
            PredictorKind::Regression { .. } => "sz-regression",
        }
    }
}

impl SzCompressor {
    /// [`Codec::compress`] with reusable scratch buffers: residuals, codes,
    /// and outliers are staged in `scratch`, so per-block encode loops
    /// reuse the element-proportional buffers across blocks. Output bytes
    /// are identical to
    /// [`Codec::compress`].
    pub fn compress_with(
        &self,
        field: &Field,
        scratch: &mut EncodeScratch,
    ) -> Result<EncodedStream, CfcError> {
        let stats = FieldStats::of(field);
        // quantize at the ULP-guarded bound so the f32 reconstruction still
        // satisfies the user-facing bound exactly; the container carries the
        // quantization bound (the decoder must scale by it), the stream
        // reports the user-facing bound
        let eb_user = self.bound.try_resolve(&stats)?;
        let eb = self.bound.try_resolve_quantization(&stats)?;
        let lattice = QuantLattice::prequantize(field, eb);
        let mut container = Container::new(field.shape(), eb, self.quantizer.radius);
        let before = scratch.caps();
        match self.predictor {
            PredictorKind::Lorenzo => {
                codec::encode_with(&lattice, &LorenzoPredictor, &self.quantizer, scratch)
            }
            PredictorKind::Regression { block } => {
                let reg = RegressionPredictor::fit(&lattice, block);
                let mut side = Vec::with_capacity(8 + reg.coeffs().len() * 4);
                side.extend_from_slice(&(block as u32).to_le_bytes());
                side.extend_from_slice(&(reg.coeffs().len() as u32).to_le_bytes());
                for &c in reg.coeffs() {
                    side.extend_from_slice(&c.to_le_bytes());
                }
                container.push(SectionTag::PredictorSideInfo, lossless::compress(&side));
                codec::encode_with(&lattice, &reg, &self.quantizer, scratch)
            }
        };
        // split borrows: codes/outliers are inputs, payload/lz are staging
        let crate::scratch::EncodeScratch {
            codes,
            outliers,
            payload,
            lz,
            ..
        } = scratch;
        let n_outliers = outliers.len();
        container.push(SectionTag::Residuals, encode_codes_into(codes, payload, lz));
        container.push(
            SectionTag::Outliers,
            encode_outliers_into(outliers, payload, lz),
        );
        scratch.track(before);
        Ok(EncodedStream {
            bytes: container.to_bytes(),
            eb_abs: eb_user,
            n_outliers,
        })
    }

    /// [`Codec::decompress`] with reusable scratch buffers (see
    /// [`SzCompressor::decompress_lattice_with`]).
    pub fn decompress_with(
        &self,
        bytes: &[u8],
        scratch: &mut DecodeScratch,
    ) -> Result<Field, CfcError> {
        let container = Container::try_from_bytes(bytes)?;
        let shape = container.shape;
        let lattice = match self.predictor {
            PredictorKind::Lorenzo => {
                self.decompress_lattice_with(&container, &LorenzoPredictor, scratch)?
            }
            PredictorKind::Regression { .. } => {
                // worst legitimate case is block = 1: one (ndim+1)-coefficient
                // plane per sample, 4 bytes each, plus the 8-byte header
                let side_budget = shape
                    .len()
                    .saturating_mul((shape.ndim() + 1) * 4)
                    .saturating_add(8);
                let side = lossless::try_decompress_bounded(
                    container.require_section(SectionTag::PredictorSideInfo)?,
                    side_budget,
                )?;
                let mut r = crate::error::Reader::new(&side);
                let block = r.u32("regression block")? as usize;
                if block == 0 {
                    return Err(CfcError::Corrupt {
                        context: "regression side info",
                        detail: "zero block size".into(),
                    });
                }
                let ncoef = r.u32("regression coefficient count")? as usize;
                // from_coeffs asserts this relation, so verify it on the
                // untrusted values first and fail gracefully instead
                let nblocks: usize = shape.dims().iter().map(|&d| d.div_ceil(block)).product();
                let expected = nblocks.saturating_mul(shape.ndim() + 1);
                if ncoef != expected || ncoef != r.remaining() / 4 {
                    return Err(CfcError::Corrupt {
                        context: "regression side info",
                        detail: format!(
                            "{ncoef} coefficients, geometry needs {expected}, payload holds {}",
                            r.remaining() / 4
                        ),
                    });
                }
                let mut coeffs = Vec::with_capacity(ncoef);
                for _ in 0..ncoef {
                    coeffs.push(r.f32("regression coefficient")?);
                }
                let reg = RegressionPredictor::from_coeffs(shape.dims().to_vec(), block, coeffs);
                self.decompress_lattice_with(&container, &reg, scratch)?
            }
        };
        Ok(lattice.reconstruct(container.eb))
    }
}

/// Huffman + LZSS encode residual codes.
pub fn encode_codes(codes: &[u32]) -> Vec<u8> {
    encode_codes_into(codes, &mut Vec::new(), &mut lossless::LzScratch::new())
}

/// [`encode_codes`] through caller-owned staging: the Huffman table and
/// bitstream land in `payload` (cleared first) and the lossless stage
/// reuses `lz`, so per-block encode loops allocate only the output.
pub fn encode_codes_into(
    codes: &[u32],
    payload: &mut Vec<u8>,
    lz: &mut lossless::LzScratch,
) -> Vec<u8> {
    payload.clear();
    let table = HuffmanTable::from_symbols(codes);
    table.serialize_into(payload);
    table
        .try_encode_append(codes, payload)
        .expect("table was built from these symbols");
    lossless::compress_with(payload, lz)
}

/// Inverse of [`encode_codes`]. Panics on corrupt input; use
/// [`try_decode_codes`] for untrusted bytes.
pub fn decode_codes(bytes: &[u8], count: usize) -> Vec<u32> {
    try_decode_codes(bytes, count).expect("corrupt residual code stream")
}

/// Fallible inverse of [`encode_codes`].
///
/// `count` is the expected symbol count (the stream's declared element
/// count); it also budgets the lossless stage, since a legitimate payload
/// holds at most the serialized table (≤ 5 bytes/distinct symbol, distinct
/// symbols ≤ count) plus `count` codes of ≤ 32 bits — anything claiming
/// more is a decompression bomb and is rejected before allocation.
pub fn try_decode_codes(bytes: &[u8], count: usize) -> Result<Vec<u32>, CfcError> {
    let mut payload = Vec::new();
    let mut out = Vec::new();
    try_decode_codes_into(bytes, count, &mut payload, &mut out)?;
    Ok(out)
}

/// [`try_decode_codes`] through caller-owned buffers: `payload` stages the
/// decompressed lossless bytes, `out` receives the codes. Both are cleared
/// first, so block loops reuse their steady-state capacity.
pub fn try_decode_codes_into(
    bytes: &[u8],
    count: usize,
    payload: &mut Vec<u8>,
    out: &mut Vec<u32>,
) -> Result<(), CfcError> {
    let budget = count.saturating_mul(4 + 5).saturating_add(1024);
    lossless::try_decompress_bounded_into(bytes, budget, payload)?;
    let (table, used) = HuffmanTable::try_deserialize(payload)?;
    table.try_decode_into(&payload[used..], count, out)
}

/// Serialize outliers (zig-zag varint) and LZSS the result.
pub fn encode_outliers(outliers: &[i64]) -> Vec<u8> {
    encode_outliers_into(outliers, &mut Vec::new(), &mut lossless::LzScratch::new())
}

/// [`encode_outliers`] through caller-owned staging (see
/// [`encode_codes_into`]).
pub fn encode_outliers_into(
    outliers: &[i64],
    payload: &mut Vec<u8>,
    lz: &mut lossless::LzScratch,
) -> Vec<u8> {
    payload.clear();
    payload.extend_from_slice(&(outliers.len() as u64).to_le_bytes());
    for &v in outliers {
        let zz = ((v << 1) ^ (v >> 63)) as u64;
        write_varint(payload, zz);
    }
    lossless::compress_with(payload, lz)
}

/// Inverse of [`encode_outliers`]. Panics on corrupt input; use
/// [`try_decode_outliers`] for untrusted bytes.
pub fn decode_outliers(bytes: &[u8]) -> Vec<i64> {
    try_decode_outliers(bytes).expect("corrupt outlier stream")
}

/// Fallible inverse of [`encode_outliers`] with no outlier-count budget
/// (trusted input).
pub fn try_decode_outliers(bytes: &[u8]) -> Result<Vec<i64>, CfcError> {
    try_decode_outliers_bounded(bytes, usize::MAX)
}

/// Fallible inverse of [`encode_outliers`] for untrusted input.
///
/// `max_count` (the stream's declared element count — at most one outlier
/// per sample) budgets both the claimed outlier count and the lossless
/// stage (each outlier is a ≤ 10-byte varint), so a hostile stream cannot
/// demand allocations beyond what its own header already commits to.
pub fn try_decode_outliers_bounded(bytes: &[u8], max_count: usize) -> Result<Vec<i64>, CfcError> {
    let mut payload = Vec::new();
    let mut out = Vec::new();
    try_decode_outliers_bounded_into(bytes, max_count, &mut payload, &mut out)?;
    Ok(out)
}

/// [`try_decode_outliers_bounded`] through caller-owned buffers (see
/// [`try_decode_codes_into`]).
pub fn try_decode_outliers_bounded_into(
    bytes: &[u8],
    max_count: usize,
    payload: &mut Vec<u8>,
    out: &mut Vec<i64>,
) -> Result<(), CfcError> {
    out.clear();
    let budget = max_count.saturating_mul(10).saturating_add(8);
    lossless::try_decompress_bounded_into(bytes, budget, payload)?;
    let raw = payload.as_slice();
    if raw.len() < 8 {
        return Err(CfcError::Truncated {
            context: "outlier count",
            needed: 8,
            available: raw.len(),
        });
    }
    let n = u64::from_le_bytes(raw[0..8].try_into().unwrap()) as usize;
    if n > max_count {
        return Err(CfcError::Corrupt {
            context: "outlier stream",
            detail: format!("{n} outliers for at most {max_count} samples"),
        });
    }
    // every outlier occupies at least one varint byte
    if n > raw.len() - 8 {
        return Err(CfcError::Corrupt {
            context: "outlier stream",
            detail: format!("{n} outliers claimed in {} payload bytes", raw.len() - 8),
        });
    }
    let mut pos = 8usize;
    out.reserve(n);
    for _ in 0..n {
        let zz = read_varint(raw, &mut pos)?;
        out.push(((zz >> 1) as i64) ^ -((zz & 1) as i64));
    }
    Ok(())
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CfcError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or(CfcError::Truncated {
            context: "outlier varint",
            needed: 1,
            available: 0,
        })?;
        *pos += 1;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift >= 64 {
            return Err(CfcError::Corrupt {
                context: "outlier varint",
                detail: "continuation past 64 bits".into(),
            });
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_tensor::{Axis, Shape};

    fn roundtrip(c: &SzCompressor, f: &Field) -> (EncodedStream, Field) {
        let stream = c.compress(f).expect("compress");
        let dec = c.decompress(&stream.bytes).expect("decompress");
        (stream, dec)
    }

    fn smooth_field_2d(rows: usize, cols: usize) -> Field {
        Field::from_fn(Shape::d2(rows, cols), |idx| {
            let (i, j) = (idx[0] as f32, idx[1] as f32);
            (i * 0.1).sin() * 30.0 + (j * 0.07).cos() * 20.0 + 100.0
        })
    }

    fn smooth_field_3d(d: usize, r: usize, c: usize) -> Field {
        Field::from_fn(Shape::d3(d, r, c), |idx| {
            let (k, i, j) = (idx[0] as f32, idx[1] as f32, idx[2] as f32);
            (k * 0.3).sin() * 10.0 + (i * 0.1).cos() * 25.0 + j * 0.05
        })
    }

    fn check_bound(orig: &Field, dec: &Field, eb: f64) {
        for (a, b) in orig.as_slice().iter().zip(dec.as_slice()) {
            assert!(
                ((a - b).abs() as f64) <= eb * (1.0 + 1e-9),
                "error bound violated: |{a} - {b}| > {eb}"
            );
        }
    }

    #[test]
    fn lorenzo_2d_roundtrip_respects_bound() {
        let f = smooth_field_2d(64, 64);
        for rel in [1e-2, 1e-3, 1e-4] {
            let c = SzCompressor::baseline(rel);
            let (stream, dec) = roundtrip(&c, &f);
            check_bound(&f, &dec, stream.eb_abs);
        }
    }

    #[test]
    fn lorenzo_3d_roundtrip_respects_bound() {
        let f = smooth_field_3d(8, 24, 24);
        let c = SzCompressor::baseline(1e-3);
        let (stream, dec) = roundtrip(&c, &f);
        assert_eq!(dec.shape(), f.shape());
        check_bound(&f, &dec, stream.eb_abs);
    }

    #[test]
    fn smooth_data_compresses_above_10x() {
        let f = smooth_field_2d(128, 128);
        let c = SzCompressor::baseline(1e-3);
        let stream = c.compress(&f).unwrap();
        let ratio = stream.ratio(f.len());
        assert!(ratio > 10.0, "ratio {ratio} too low for smooth data");
    }

    #[test]
    fn tighter_bound_means_lower_ratio() {
        let f = smooth_field_2d(96, 96);
        let loose = SzCompressor::baseline(1e-2).compress(&f).unwrap();
        let tight = SzCompressor::baseline(1e-4).compress(&f).unwrap();
        assert!(loose.bytes.len() < tight.bytes.len());
    }

    #[test]
    fn decompression_is_deterministic() {
        let f = smooth_field_3d(6, 20, 20);
        let c = SzCompressor::baseline(1e-3);
        let s1 = c.compress(&f).unwrap();
        let s2 = c.compress(&f).unwrap();
        assert_eq!(s1.bytes, s2.bytes);
        assert_eq!(
            c.decompress(&s1.bytes).unwrap().as_slice(),
            c.decompress(&s2.bytes).unwrap().as_slice()
        );
    }

    #[test]
    fn regression_predictor_roundtrip() {
        let f = smooth_field_2d(48, 48);
        let c = SzCompressor {
            bound: ErrorBound::Relative(1e-3),
            quantizer: QuantizerConfig::default(),
            predictor: PredictorKind::Regression { block: 6 },
        };
        let (stream, dec) = roundtrip(&c, &f);
        check_bound(&f, &dec, stream.eb_abs);
    }

    #[test]
    fn rough_data_still_bounded() {
        // adversarial: pseudo-random field, mostly outliers at small radius
        let f = Field::from_fn(Shape::d2(32, 32), |idx| {
            let x = (idx[0] * 7919 + idx[1] * 104729) % 1000;
            x as f32 * 3.7 - 1500.0
        });
        let c = SzCompressor {
            bound: ErrorBound::Absolute(0.5),
            quantizer: QuantizerConfig { radius: 16 },
            predictor: PredictorKind::Lorenzo,
        };
        let (stream, dec) = roundtrip(&c, &f);
        assert!(stream.n_outliers > 0);
        check_bound(&f, &dec, 0.5);
    }

    #[test]
    fn absolute_bound_mode() {
        let f = smooth_field_2d(40, 40);
        let c = SzCompressor {
            bound: ErrorBound::Absolute(0.25),
            quantizer: QuantizerConfig::default(),
            predictor: PredictorKind::Lorenzo,
        };
        let (stream, dec) = roundtrip(&c, &f);
        assert_eq!(stream.eb_abs, 0.25);
        check_bound(&f, &dec, 0.25);
    }

    #[test]
    fn slice_consistency_after_roundtrip() {
        // decompressed 3-D field slices must equal slicing the decompressed
        // volume (sanity on shape/stride handling)
        let f = smooth_field_3d(5, 16, 16);
        let c = SzCompressor::baseline(1e-3);
        let dec = c.decompress(&c.compress(&f).unwrap().bytes).unwrap();
        let s = dec.slice(Axis::X, 2);
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(s.get(&[i, j]), dec.get(&[2, i, j]));
            }
        }
    }

    #[test]
    fn varint_roundtrip() {
        let vals: Vec<i64> = vec![0, 1, -1, 63, -64, 1 << 20, -(1 << 40), i64::MAX, i64::MIN];
        let bytes = encode_outliers(&vals);
        assert_eq!(decode_outliers(&bytes), vals);
    }

    #[test]
    fn non_finite_samples_rejected_at_compress() {
        // NaN hidden among varied values must not silently encode as 0
        // (f32 min/max skip NaN, so only the mean check can catch it)
        let mut v: Vec<f32> = (0..64).map(|i| i as f32).collect();
        v[7] = f32::NAN;
        let f = Field::from_vec(Shape::d2(8, 8), v);
        for c in [
            SzCompressor::baseline(1e-3),
            SzCompressor {
                bound: ErrorBound::Absolute(0.5),
                ..SzCompressor::baseline(1e-3)
            },
        ] {
            assert!(matches!(c.compress(&f), Err(CfcError::InvalidInput(_))));
        }
    }

    #[test]
    fn ratio_and_bitrate_are_consistent() {
        let f = smooth_field_2d(64, 64);
        let stream = SzCompressor::baseline(1e-3).compress(&f).unwrap();
        let n = f.len();
        let ratio = stream.ratio(n);
        let rate = stream.bit_rate(n);
        assert!((ratio * rate - 32.0).abs() < 1e-9);
    }
}
