//! Top-level error-bounded compressor (the SZ3 baseline of the paper).

use cfc_tensor::{Field, FieldStats};

use crate::codec;
use crate::error_bound::ErrorBound;
use crate::huffman::HuffmanTable;
use crate::lattice::QuantLattice;
use crate::lossless;
use crate::predict::{LorenzoPredictor, Predictor, RegressionPredictor};
use crate::quantizer::{EncodedResiduals, QuantizerConfig};
use crate::stream::{Container, SectionTag};

/// Which local predictor the baseline pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// 1-layer Lorenzo (the paper's baseline configuration).
    Lorenzo,
    /// SZ3-style block regression with the given block edge.
    Regression {
        /// Tile edge length (SZ3 default: 6).
        block: usize,
    },
}

/// An error-bounded prediction-based lossy compressor.
#[derive(Debug, Clone, Copy)]
pub struct SzCompressor {
    /// Error-bound mode and magnitude.
    pub bound: ErrorBound,
    /// Residual quantizer configuration.
    pub quantizer: QuantizerConfig,
    /// Local predictor selection.
    pub predictor: PredictorKind,
}

/// A compressed field plus bookkeeping used by the evaluation harness.
#[derive(Debug, Clone)]
pub struct CompressedStream {
    /// Serialized container.
    pub bytes: Vec<u8>,
    /// Absolute error bound that was applied.
    pub eb_abs: f64,
    /// Number of escaped (outlier) samples.
    pub n_outliers: usize,
}

impl CompressedStream {
    /// Compression ratio against `f32` input.
    pub fn ratio(&self, n_samples: usize) -> f64 {
        (n_samples * 4) as f64 / self.bytes.len() as f64
    }

    /// Bit rate (bits per sample).
    pub fn bit_rate(&self, n_samples: usize) -> f64 {
        self.bytes.len() as f64 * 8.0 / n_samples as f64
    }
}

impl SzCompressor {
    /// Baseline configuration used throughout the paper: Lorenzo predictor,
    /// default radius, relative error bound.
    pub fn baseline(rel_eb: f64) -> Self {
        SzCompressor {
            bound: ErrorBound::Relative(rel_eb),
            quantizer: QuantizerConfig::default(),
            predictor: PredictorKind::Lorenzo,
        }
    }

    /// Compress one field.
    pub fn compress(&self, field: &Field) -> CompressedStream {
        let stats = FieldStats::of(field);
        // quantize at the ULP-guarded bound so the f32 reconstruction still
        // satisfies the user-facing bound exactly; the container carries the
        // quantization bound (the decoder must scale by it), the stream
        // reports the user-facing bound
        let eb_user = self.bound.resolve(&stats);
        let eb = self.bound.resolve_quantization(&stats);
        let lattice = QuantLattice::prequantize(field, eb);
        let mut container = Container::new(field.shape(), eb, self.quantizer.radius);
        let enc = match self.predictor {
            PredictorKind::Lorenzo => codec::encode(&lattice, &LorenzoPredictor, &self.quantizer),
            PredictorKind::Regression { block } => {
                let reg = RegressionPredictor::fit(&lattice, block);
                let mut side = Vec::with_capacity(8 + reg.coeffs().len() * 4);
                side.extend_from_slice(&(block as u32).to_le_bytes());
                side.extend_from_slice(&(reg.coeffs().len() as u32).to_le_bytes());
                for &c in reg.coeffs() {
                    side.extend_from_slice(&c.to_le_bytes());
                }
                container.push(SectionTag::PredictorSideInfo, lossless::compress(&side));
                codec::encode(&lattice, &reg, &self.quantizer)
            }
        };
        let n_outliers = enc.outliers.len();
        container.push(SectionTag::Residuals, encode_codes(&enc.codes));
        container.push(SectionTag::Outliers, encode_outliers(&enc.outliers));
        CompressedStream { bytes: container.to_bytes(), eb_abs: eb_user, n_outliers }
    }

    /// Decompress a stream produced by [`SzCompressor::compress`].
    pub fn decompress(&self, bytes: &[u8]) -> Field {
        let container = Container::from_bytes(bytes);
        let shape = container.shape;
        let quant = QuantizerConfig { radius: container.radius };
        let codes = decode_codes(container.expect_section(SectionTag::Residuals), shape.len());
        let outliers = decode_outliers(container.expect_section(SectionTag::Outliers));
        let lattice = match self.predictor {
            PredictorKind::Lorenzo => {
                codec::decode(shape, &codes, &outliers, &LorenzoPredictor, &quant)
            }
            PredictorKind::Regression { .. } => {
                let side =
                    lossless::decompress(container.expect_section(SectionTag::PredictorSideInfo));
                let block = u32::from_le_bytes(side[0..4].try_into().unwrap()) as usize;
                let ncoef = u32::from_le_bytes(side[4..8].try_into().unwrap()) as usize;
                let mut coeffs = Vec::with_capacity(ncoef);
                for k in 0..ncoef {
                    let off = 8 + k * 4;
                    coeffs.push(f32::from_le_bytes(side[off..off + 4].try_into().unwrap()));
                }
                let reg = RegressionPredictor::from_coeffs(shape.dims().to_vec(), block, coeffs);
                codec::decode(shape, &codes, &outliers, &reg, &quant)
            }
        };
        lattice.reconstruct(container.eb)
    }

    /// Compress a prequantized lattice with an arbitrary (causal) predictor,
    /// returning the container for callers that append extra sections — this
    /// is the entry point the cross-field pipeline in `cfc-core` builds on.
    pub fn compress_lattice(
        &self,
        lattice: &QuantLattice,
        predictor: &dyn Predictor,
        eb: f64,
    ) -> (Container, EncodedResiduals) {
        assert!(predictor.is_causal(), "refusing to encode with a non-causal predictor");
        let mut container = Container::new(lattice.shape(), eb, self.quantizer.radius);
        let enc = codec::encode(lattice, predictor, &self.quantizer);
        container.push(SectionTag::Residuals, encode_codes(&enc.codes));
        container.push(SectionTag::Outliers, encode_outliers(&enc.outliers));
        (container, enc)
    }

    /// Decode a container's residual sections with an arbitrary predictor.
    pub fn decompress_lattice(
        &self,
        container: &Container,
        predictor: &dyn Predictor,
    ) -> QuantLattice {
        let shape = container.shape;
        let quant = QuantizerConfig { radius: container.radius };
        let codes = decode_codes(container.expect_section(SectionTag::Residuals), shape.len());
        let outliers = decode_outliers(container.expect_section(SectionTag::Outliers));
        codec::decode(shape, &codes, &outliers, predictor, &quant)
    }
}

/// Huffman + LZSS encode residual codes.
pub fn encode_codes(codes: &[u32]) -> Vec<u8> {
    let table = HuffmanTable::from_symbols(codes);
    let tbl = table.serialize();
    let bits = table.encode(codes);
    let mut payload = Vec::with_capacity(tbl.len() + bits.len());
    payload.extend_from_slice(&tbl);
    payload.extend_from_slice(&bits);
    lossless::compress(&payload)
}

/// Inverse of [`encode_codes`].
pub fn decode_codes(bytes: &[u8], count: usize) -> Vec<u32> {
    let payload = lossless::decompress(bytes);
    let (table, used) = HuffmanTable::deserialize(&payload);
    table.decode(&payload[used..], count)
}

/// Serialize outliers (zig-zag varint) and LZSS the result.
pub fn encode_outliers(outliers: &[i64]) -> Vec<u8> {
    let mut raw = Vec::with_capacity(8 + outliers.len() * 3);
    raw.extend_from_slice(&(outliers.len() as u64).to_le_bytes());
    for &v in outliers {
        let zz = ((v << 1) ^ (v >> 63)) as u64;
        write_varint(&mut raw, zz);
    }
    lossless::compress(&raw)
}

/// Inverse of [`encode_outliers`].
pub fn decode_outliers(bytes: &[u8]) -> Vec<i64> {
    let raw = lossless::decompress(bytes);
    let n = u64::from_le_bytes(raw[0..8].try_into().unwrap()) as usize;
    let mut pos = 8usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let zz = read_varint(&raw, &mut pos);
        out.push(((zz >> 1) as i64) ^ -((zz & 1) as i64));
    }
    out
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
        assert!(shift < 64, "varint overflow");
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_tensor::{Axis, Shape};

    fn smooth_field_2d(rows: usize, cols: usize) -> Field {
        Field::from_fn(Shape::d2(rows, cols), |idx| {
            let (i, j) = (idx[0] as f32, idx[1] as f32);
            (i * 0.1).sin() * 30.0 + (j * 0.07).cos() * 20.0 + 100.0
        })
    }

    fn smooth_field_3d(d: usize, r: usize, c: usize) -> Field {
        Field::from_fn(Shape::d3(d, r, c), |idx| {
            let (k, i, j) = (idx[0] as f32, idx[1] as f32, idx[2] as f32);
            (k * 0.3).sin() * 10.0 + (i * 0.1).cos() * 25.0 + j * 0.05
        })
    }

    fn check_bound(orig: &Field, dec: &Field, eb: f64) {
        for (a, b) in orig.as_slice().iter().zip(dec.as_slice()) {
            assert!(
                ((a - b).abs() as f64) <= eb * (1.0 + 1e-9),
                "error bound violated: |{a} - {b}| > {eb}"
            );
        }
    }

    #[test]
    fn lorenzo_2d_roundtrip_respects_bound() {
        let f = smooth_field_2d(64, 64);
        for rel in [1e-2, 1e-3, 1e-4] {
            let c = SzCompressor::baseline(rel);
            let stream = c.compress(&f);
            let dec = c.decompress(&stream.bytes);
            check_bound(&f, &dec, stream.eb_abs);
        }
    }

    #[test]
    fn lorenzo_3d_roundtrip_respects_bound() {
        let f = smooth_field_3d(8, 24, 24);
        let c = SzCompressor::baseline(1e-3);
        let stream = c.compress(&f);
        let dec = c.decompress(&stream.bytes);
        assert_eq!(dec.shape(), f.shape());
        check_bound(&f, &dec, stream.eb_abs);
    }

    #[test]
    fn smooth_data_compresses_above_10x() {
        let f = smooth_field_2d(128, 128);
        let c = SzCompressor::baseline(1e-3);
        let stream = c.compress(&f);
        let ratio = stream.ratio(f.len());
        assert!(ratio > 10.0, "ratio {ratio} too low for smooth data");
    }

    #[test]
    fn tighter_bound_means_lower_ratio() {
        let f = smooth_field_2d(96, 96);
        let loose = SzCompressor::baseline(1e-2).compress(&f);
        let tight = SzCompressor::baseline(1e-4).compress(&f);
        assert!(loose.bytes.len() < tight.bytes.len());
    }

    #[test]
    fn decompression_is_deterministic() {
        let f = smooth_field_3d(6, 20, 20);
        let c = SzCompressor::baseline(1e-3);
        let s1 = c.compress(&f);
        let s2 = c.compress(&f);
        assert_eq!(s1.bytes, s2.bytes);
        assert_eq!(
            c.decompress(&s1.bytes).as_slice(),
            c.decompress(&s2.bytes).as_slice()
        );
    }

    #[test]
    fn regression_predictor_roundtrip() {
        let f = smooth_field_2d(48, 48);
        let c = SzCompressor {
            bound: ErrorBound::Relative(1e-3),
            quantizer: QuantizerConfig::default(),
            predictor: PredictorKind::Regression { block: 6 },
        };
        let stream = c.compress(&f);
        let dec = c.decompress(&stream.bytes);
        check_bound(&f, &dec, stream.eb_abs);
    }

    #[test]
    fn rough_data_still_bounded() {
        // adversarial: pseudo-random field, mostly outliers at small radius
        let f = Field::from_fn(Shape::d2(32, 32), |idx| {
            let x = (idx[0] * 7919 + idx[1] * 104729) % 1000;
            x as f32 * 3.7 - 1500.0
        });
        let c = SzCompressor {
            bound: ErrorBound::Absolute(0.5),
            quantizer: QuantizerConfig { radius: 16 },
            predictor: PredictorKind::Lorenzo,
        };
        let stream = c.compress(&f);
        assert!(stream.n_outliers > 0);
        let dec = c.decompress(&stream.bytes);
        check_bound(&f, &dec, 0.5);
    }

    #[test]
    fn absolute_bound_mode() {
        let f = smooth_field_2d(40, 40);
        let c = SzCompressor {
            bound: ErrorBound::Absolute(0.25),
            quantizer: QuantizerConfig::default(),
            predictor: PredictorKind::Lorenzo,
        };
        let stream = c.compress(&f);
        assert_eq!(stream.eb_abs, 0.25);
        check_bound(&f, &c.decompress(&stream.bytes), 0.25);
    }

    #[test]
    fn slice_consistency_after_roundtrip() {
        // decompressed 3-D field slices must equal slicing the decompressed
        // volume (sanity on shape/stride handling)
        let f = smooth_field_3d(5, 16, 16);
        let c = SzCompressor::baseline(1e-3);
        let dec = c.decompress(&c.compress(&f).bytes);
        let s = dec.slice(Axis::X, 2);
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(s.get(&[i, j]), dec.get(&[2, i, j]));
            }
        }
    }

    #[test]
    fn varint_roundtrip() {
        let vals: Vec<i64> = vec![0, 1, -1, 63, -64, 1 << 20, -(1 << 40), i64::MAX, i64::MIN];
        let bytes = encode_outliers(&vals);
        assert_eq!(decode_outliers(&bytes), vals);
    }

    #[test]
    fn ratio_and_bitrate_are_consistent() {
        let f = smooth_field_2d(64, 64);
        let stream = SzCompressor::baseline(1e-3).compress(&f);
        let n = f.len();
        let ratio = stream.ratio(n);
        let rate = stream.bit_rate(n);
        assert!((ratio * rate - 32.0).abs() < 1e-9);
    }
}
