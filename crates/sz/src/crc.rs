//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the per-block
//! integrity check of the chunked CFAR v2 container.
//!
//! Each archive block carries its CRC in the block index, so a flipped bit
//! anywhere in a block payload is detected *before* the entropy decoder
//! runs, surfacing as a typed [`crate::CfcError::ChecksumMismatch`] instead
//! of a garbage decode. Table-driven, one table per process (lazily built).

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (IEEE, init `0xFFFFFFFF`, final xor `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data: Vec<u8> = (0..255u8).collect();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
