//! The workspace-wide error type for fallible compression APIs.
//!
//! Every decode-path failure — bad magic, unsupported version, truncation,
//! missing or corrupt sections, shape mismatches — surfaces as a
//! [`CfcError`] instead of a panic, so attacker-controlled bytes can never
//! take a service down. Encode-side misconfiguration (non-finite samples,
//! non-positive bounds) uses the same type.

use std::fmt;

/// Error enum shared by [`crate::Codec`] implementations and the archive
/// subsystem in `cfc-core`.
#[derive(Debug, Clone, PartialEq)]
pub enum CfcError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic {
        /// Magic the decoder expected.
        expected: [u8; 4],
        /// Leading bytes actually found (up to 4).
        found: Vec<u8>,
    },
    /// The container version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the stream.
        found: u16,
        /// Newest version this build decodes.
        supported: u16,
    },
    /// A structurally invalid header field (ndim, zero extent, oversize…).
    InvalidHeader(String),
    /// The buffer ended before a read completed.
    Truncated {
        /// What was being read.
        context: &'static str,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// A required container section is absent.
    MissingSection {
        /// Raw section tag.
        tag: u8,
        /// Human-readable section name.
        name: &'static str,
    },
    /// A section or payload failed internal validation.
    Corrupt {
        /// Which decode stage detected the corruption.
        context: &'static str,
        /// What exactly was wrong.
        detail: String,
    },
    /// Decoded metadata disagrees with caller-supplied or embedded shapes.
    ShapeMismatch {
        /// Shape the decoder expected.
        expected: String,
        /// Shape actually found.
        found: String,
    },
    /// Encode-side input validation failure (bad bound, non-finite data…).
    InvalidInput(String),
    /// A payload's checksum disagrees with the one recorded in its index —
    /// bit rot or in-flight corruption detected before decoding.
    ChecksumMismatch {
        /// What was being verified (e.g. "archive block").
        context: &'static str,
        /// Checksum recorded at write time.
        expected: u32,
        /// Checksum of the bytes actually read.
        found: u32,
    },
    /// An underlying `std::io` operation failed (streaming archive I/O).
    Io {
        /// What was being read or written.
        context: &'static str,
        /// The failure's [`std::io::ErrorKind`] — the signal
        /// [`CfcError::is_transient`] classifies retryability from.
        kind: std::io::ErrorKind,
        /// The I/O error's message (`std::io::Error` is not `Clone`).
        detail: String,
    },
    /// Any of the above, wrapped with the archive field (and, when block
    /// random access is involved, block index) it occurred in. Produced by
    /// [`CfcError::in_field`] on the archive decode paths so multi-field
    /// failures always name their origin; the underlying failure is
    /// reachable through [`std::error::Error::source`].
    InField {
        /// Name of the archive field being decoded.
        field: String,
        /// Block index within the field, when the failure is block-scoped.
        block: Option<usize>,
        /// The underlying failure.
        source: Box<CfcError>,
    },
}

impl CfcError {
    /// Wrap a [`std::io::Error`] with the operation it interrupted,
    /// preserving its [`std::io::ErrorKind`] for transience classification.
    pub fn io(context: &'static str, e: &std::io::Error) -> CfcError {
        CfcError::Io {
            context,
            kind: e.kind(),
            detail: e.to_string(),
        }
    }

    /// Whether an [`std::io::ErrorKind`] names a *transient* condition —
    /// one where retrying the same operation can plausibly succeed
    /// (interrupted syscalls, timeouts, contention), as opposed to
    /// permanent failures like missing files, bad data, or EOF.
    ///
    /// This is the single source of truth for every retry loop in the
    /// workspace; see [`CfcError::is_transient`] for the error-level view.
    pub fn io_kind_is_transient(kind: std::io::ErrorKind) -> bool {
        use std::io::ErrorKind::*;
        matches!(kind, Interrupted | TimedOut | WouldBlock)
    }

    /// Whether this error is worth retrying: its [`CfcError::root_cause`]
    /// is an [`CfcError::Io`] of a transient [`std::io::ErrorKind`]
    /// (interrupted syscall, timeout, would-block). Checksum mismatches,
    /// truncation, and structural corruption are deterministic — retrying
    /// them re-reads the same bad bytes — so they are never transient.
    pub fn is_transient(&self) -> bool {
        match self.root_cause() {
            CfcError::Io { kind, .. } => Self::io_kind_is_transient(*kind),
            _ => false,
        }
    }

    /// Wrap this error with the archive field (and optional block index)
    /// it occurred in. An error that already carries field context is
    /// returned unchanged — the innermost attribution, recorded closest to
    /// the failure site, is the accurate one.
    pub fn in_field(self, field: &str, block: Option<usize>) -> CfcError {
        match self {
            CfcError::InField { .. } => self,
            other => CfcError::InField {
                field: field.to_string(),
                block,
                source: Box::new(other),
            },
        }
    }

    /// The error with any field/block attribution stripped — the
    /// underlying failure a caller should match on.
    pub fn root_cause(&self) -> &CfcError {
        match self {
            CfcError::InField { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for CfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfcError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                std::str::from_utf8(expected).unwrap_or("????"),
                found
            ),
            CfcError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported stream version {found} (this build decodes ≤ {supported})"
            ),
            CfcError::InvalidHeader(msg) => write!(f, "invalid header: {msg}"),
            CfcError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated input while reading {context}: needed {needed} bytes, had {available}"
            ),
            CfcError::MissingSection { tag, name } => {
                write!(f, "stream missing required section {name} (tag {tag})")
            }
            CfcError::Corrupt { context, detail } => write!(f, "corrupt {context}: {detail}"),
            CfcError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            CfcError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CfcError::ChecksumMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch in {context}: recorded {expected:#010x}, computed {found:#010x}"
            ),
            CfcError::Io {
                context, detail, ..
            } => write!(f, "I/O error while {context}: {detail}"),
            CfcError::InField {
                field,
                block,
                source,
            } => match block {
                Some(b) => write!(f, "field {field:?} block {b}: {source}"),
                None => write!(f, "field {field:?}: {source}"),
            },
        }
    }
}

impl std::error::Error for CfcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CfcError::InField { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Checked little-endian reader over untrusted bytes.
///
/// Every accessor returns [`CfcError::Truncated`] instead of panicking when
/// the buffer runs out — the primitive all decode paths are built on.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Absolute cursor position.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Borrow the next `n` bytes and advance.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CfcError> {
        if n > self.remaining() {
            return Err(CfcError::Truncated {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, CfcError> {
        Ok(self.bytes(1, context)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, CfcError> {
        Ok(u16::from_le_bytes(
            self.bytes(2, context)?.try_into().unwrap(),
        ))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, CfcError> {
        Ok(u32::from_le_bytes(
            self.bytes(4, context)?.try_into().unwrap(),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, CfcError> {
        Ok(u64::from_le_bytes(
            self.bytes(8, context)?.try_into().unwrap(),
        ))
    }

    /// Read a little-endian `u64` and validate it fits `usize` and the
    /// remaining buffer (for length prefixes of in-buffer payloads).
    pub fn len_u64(&mut self, context: &'static str) -> Result<usize, CfcError> {
        let v = self.u64(context)?;
        let n = usize::try_from(v).map_err(|_| {
            CfcError::InvalidHeader(format!("{context}: length {v} does not fit in memory"))
        })?;
        if n > self.remaining() {
            return Err(CfcError::Truncated {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Read a little-endian `f32`.
    pub fn f32(&mut self, context: &'static str) -> Result<f32, CfcError> {
        Ok(f32::from_bits(self.u32(context)?))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, CfcError> {
        Ok(f64::from_bits(self.u64(context)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_reads_and_truncates() {
        let mut data = Vec::new();
        data.extend_from_slice(&7u16.to_le_bytes());
        data.extend_from_slice(&9u64.to_le_bytes());
        data.extend_from_slice(b"xy");
        let mut r = Reader::new(&data);
        assert_eq!(r.u16("a").unwrap(), 7);
        assert_eq!(r.u64("b").unwrap(), 9);
        assert_eq!(r.bytes(2, "c").unwrap(), b"xy");
        assert_eq!(r.remaining(), 0);
        assert!(matches!(
            r.u8("d"),
            Err(CfcError::Truncated { context: "d", .. })
        ));
    }

    #[test]
    fn len_u64_rejects_oversize() {
        let mut data = Vec::new();
        data.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut r = Reader::new(&data);
        assert!(r.len_u64("len").is_err());
    }

    /// One instance of every variant, paired with its exact rendered
    /// message. Exhaustive: adding a variant without extending this table
    /// fails the message-stability test below.
    fn variant_messages() -> Vec<(CfcError, &'static str)> {
        vec![
            (
                CfcError::BadMagic {
                    expected: *b"CFSZ",
                    found: vec![1, 2],
                },
                "bad magic: expected \"CFSZ\", found [1, 2]",
            ),
            (
                CfcError::UnsupportedVersion {
                    found: 9,
                    supported: 2,
                },
                "unsupported stream version 9 (this build decodes ≤ 2)",
            ),
            (
                CfcError::InvalidHeader("ndim 7".into()),
                "invalid header: ndim 7",
            ),
            (
                CfcError::Truncated {
                    context: "header",
                    needed: 8,
                    available: 2,
                },
                "truncated input while reading header: needed 8 bytes, had 2",
            ),
            (
                CfcError::MissingSection {
                    tag: 3,
                    name: "codes",
                },
                "stream missing required section codes (tag 3)",
            ),
            (
                CfcError::Corrupt {
                    context: "archive",
                    detail: "zero fields".into(),
                },
                "corrupt archive: zero fields",
            ),
            (
                CfcError::ShapeMismatch {
                    expected: "4x4".into(),
                    found: "4x5".into(),
                },
                "shape mismatch: expected 4x4, found 4x5",
            ),
            (
                CfcError::InvalidInput("bad bound".into()),
                "invalid input: bad bound",
            ),
            (
                CfcError::ChecksumMismatch {
                    context: "archive block",
                    expected: 1,
                    found: 2,
                },
                "checksum mismatch in archive block: recorded 0x00000001, computed 0x00000002",
            ),
            (
                CfcError::Io {
                    context: "writing archive",
                    kind: std::io::ErrorKind::Other,
                    detail: "disk full".into(),
                },
                "I/O error while writing archive: disk full",
            ),
            (
                CfcError::InvalidInput("short".into()).in_field("T", Some(3)),
                "field \"T\" block 3: invalid input: short",
            ),
            (
                CfcError::InvalidInput("short".into()).in_field("T", None),
                "field \"T\": invalid input: short",
            ),
        ]
    }

    #[test]
    fn every_variant_message_is_nonempty_and_stable() {
        for (e, want) in variant_messages() {
            let got = e.to_string();
            assert!(!got.is_empty(), "{e:?} renders an empty message");
            assert_eq!(got, want, "message drifted for {e:?}");
        }
    }

    #[test]
    fn in_field_attaches_context_once_and_chains_source() {
        use std::error::Error;
        let inner = CfcError::ChecksumMismatch {
            context: "archive block",
            expected: 1,
            found: 2,
        };
        let wrapped = inner.clone().in_field("RH", Some(4));
        assert_eq!(wrapped.root_cause(), &inner);
        assert_eq!(
            wrapped.source().unwrap().to_string(),
            inner.to_string(),
            "source() must expose the underlying failure"
        );
        // re-wrapping keeps the innermost (accurate) attribution
        let rewrapped = wrapped.clone().in_field("outer", None);
        assert_eq!(rewrapped, wrapped);
        // non-wrapped variants have no source and are their own root cause
        assert!(inner.source().is_none());
        assert_eq!(inner.root_cause(), &inner);
    }

    #[test]
    fn io_transience_classification() {
        use std::io::ErrorKind;
        // transient: retrying the same operation can plausibly succeed
        for kind in [
            ErrorKind::Interrupted,
            ErrorKind::TimedOut,
            ErrorKind::WouldBlock,
        ] {
            assert!(CfcError::io_kind_is_transient(kind), "{kind:?}");
            let e = CfcError::io("reading block", &std::io::Error::new(kind, "flaky"));
            assert!(e.is_transient(), "{kind:?} should be transient");
            // attribution does not change the classification
            assert!(e.in_field("T", Some(2)).is_transient());
        }
        // permanent: the same bytes (or the same absence) come back
        for kind in [
            ErrorKind::NotFound,
            ErrorKind::PermissionDenied,
            ErrorKind::UnexpectedEof,
            ErrorKind::InvalidData,
            ErrorKind::BrokenPipe,
            ErrorKind::Other,
        ] {
            assert!(!CfcError::io_kind_is_transient(kind), "{kind:?}");
            let e = CfcError::io("reading block", &std::io::Error::new(kind, "dead"));
            assert!(!e.is_transient(), "{kind:?} should be permanent");
        }
        // non-I/O failures are deterministic, never transient
        for e in [
            CfcError::ChecksumMismatch {
                context: "archive block",
                expected: 1,
                found: 2,
            },
            CfcError::Truncated {
                context: "header",
                needed: 8,
                available: 2,
            },
            CfcError::InvalidInput("bad".into()),
        ] {
            assert!(!e.is_transient(), "{e:?}");
            assert!(!e.in_field("T", None).is_transient());
        }
    }

    #[test]
    fn io_constructor_preserves_kind() {
        let e = CfcError::io(
            "sizing archive",
            &std::io::Error::new(std::io::ErrorKind::TimedOut, "slow disk"),
        );
        assert!(matches!(
            e,
            CfcError::Io {
                context: "sizing archive",
                kind: std::io::ErrorKind::TimedOut,
                ..
            }
        ));
        assert_eq!(
            e.to_string(),
            "I/O error while sizing archive: slow disk",
            "kind must not leak into the stable message"
        );
    }

    #[test]
    fn errors_display() {
        let e = CfcError::Truncated {
            context: "header",
            needed: 8,
            available: 2,
        };
        assert!(e.to_string().contains("header"));
        let e = CfcError::BadMagic {
            expected: *b"CFSZ",
            found: vec![1, 2],
        };
        assert!(e.to_string().contains("CFSZ"));
    }
}
