//! Error-bound modes.

use cfc_tensor::FieldStats;

use crate::error::CfcError;

/// User-facing error-bound specification, matching SZ's two common modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|v − v'| ≤ eb`.
    Absolute(f64),
    /// Value-range-relative bound: `|v − v'| ≤ eb · (max − min)`.
    ///
    /// This is the mode used throughout the paper's evaluation (e.g.
    /// "relative error bound 1e-3").
    Relative(f64),
}

impl ErrorBound {
    /// Resolve to the absolute bound for a field with the given statistics.
    pub fn resolve(&self, stats: &FieldStats) -> f64 {
        let eb = match *self {
            ErrorBound::Absolute(eb) => eb,
            ErrorBound::Relative(rel) => rel * stats.range() as f64,
        };
        assert!(
            eb.is_finite() && eb > 0.0,
            "error bound must be positive and finite, got {eb}"
        );
        eb
    }

    /// Resolve to the *quantization* bound: the user-facing bound shrunk by
    /// the worst-case `f32` rounding of the reconstruction.
    ///
    /// Reconstruction computes `(q · 2eb) as f32`, which adds up to half a
    /// ULP of the value magnitude on top of the quantization error. Without
    /// this guard a sample like `1005.0` at `eb ≈ 0.07` can miss the bound
    /// by ~1e-5 (f32 ULP at 1000 is 6.1e-5). Guarding keeps the public
    /// contract `|v − v'| ≤ eb` exact.
    pub fn resolve_quantization(&self, stats: &FieldStats) -> f64 {
        let eb = self.resolve(stats);
        let max_abs = stats.min.abs().max(stats.max.abs()) as f64;
        let ulp_slack = max_abs * f32::EPSILON as f64;
        // if the requested bound is below f32 resolution it cannot be met
        // exactly anyway; keep at least half the bound rather than going ≤ 0
        (eb - ulp_slack).max(eb * 0.5)
    }

    /// Fallible version of [`ErrorBound::resolve`] for the [`crate::Codec`]
    /// encode path: a non-positive or non-finite resolved bound (e.g. a
    /// relative bound on a constant or non-finite field) is an
    /// [`CfcError::InvalidInput`] instead of a panic.
    pub fn try_resolve(&self, stats: &FieldStats) -> Result<f64, CfcError> {
        // min/max alone miss NaN samples (f32::min/max skip NaN operands),
        // but the running mean poisons on any non-finite sample — without
        // this, a hidden NaN would silently prequantize to 0
        if !stats.mean.is_finite() {
            return Err(CfcError::InvalidInput(format!(
                "field contains non-finite samples (mean {})",
                stats.mean
            )));
        }
        let eb = match *self {
            ErrorBound::Absolute(eb) => eb,
            ErrorBound::Relative(rel) => rel * stats.range() as f64,
        };
        if !(eb.is_finite() && eb > 0.0) {
            return Err(CfcError::InvalidInput(format!(
                "resolved error bound {eb} must be positive and finite ({} on range [{}, {}])",
                self.label(),
                stats.min,
                stats.max
            )));
        }
        Ok(eb)
    }

    /// Fallible version of [`ErrorBound::resolve_quantization`].
    pub fn try_resolve_quantization(&self, stats: &FieldStats) -> Result<f64, CfcError> {
        let eb = self.try_resolve(stats)?;
        let max_abs = stats.min.abs().max(stats.max.abs()) as f64;
        let ulp_slack = max_abs * f32::EPSILON as f64;
        Ok((eb - ulp_slack).max(eb * 0.5))
    }

    /// The raw bound value (absolute or relative factor).
    pub fn value(&self) -> f64 {
        match *self {
            ErrorBound::Absolute(v) | ErrorBound::Relative(v) => v,
        }
    }

    /// Short label for experiment tables ("abs 1e-3" / "rel 1e-3").
    pub fn label(&self) -> String {
        match *self {
            ErrorBound::Absolute(v) => format!("abs {v:.0e}"),
            ErrorBound::Relative(v) => format!("rel {v:.0e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_tensor::{Field, Shape};

    fn stats(lo: f32, hi: f32) -> FieldStats {
        FieldStats::of(&Field::from_vec(Shape::d1(2), vec![lo, hi]))
    }

    #[test]
    fn absolute_passes_through() {
        let eb = ErrorBound::Absolute(0.5).resolve(&stats(0.0, 100.0));
        assert_eq!(eb, 0.5);
    }

    #[test]
    fn relative_scales_with_range() {
        let eb = ErrorBound::Relative(1e-3).resolve(&stats(-50.0, 50.0));
        assert!((eb - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_range_relative_bound_panics() {
        let _ = ErrorBound::Relative(1e-3).resolve(&stats(3.0, 3.0));
    }

    #[test]
    fn labels() {
        assert_eq!(ErrorBound::Relative(1e-3).label(), "rel 1e-3");
        assert_eq!(ErrorBound::Absolute(5e-4).label(), "abs 5e-4");
    }
}
