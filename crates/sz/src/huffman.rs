//! Canonical Huffman coding over arbitrary `u32` symbol alphabets.
//!
//! SZ's "customized Huffman" stage: quantization codes concentrate heavily
//! around the zero-residual code, so entropy coding them is where most of
//! the compression ratio comes from. We build optimal code lengths with the
//! classic heap algorithm, limit depth to [`MAX_CODE_LEN`] (by frequency
//! flattening on the rare pathological inputs), and transmit only the
//! `(symbol, length)` table — canonical code assignment reconstructs the
//! exact codes on the decoder side.
//!
//! Encoding is word-level: symbols are counted through a dense histogram,
//! and emission merges code *pairs* (≤ 64 bits, since codes are ≤ 32 bits)
//! into a local 64-bit accumulator that flushes eight bytes at a time —
//! see [`HuffmanTable::try_encode_append`], the checked hot path every
//! internal caller uses.
//!
//! Decoding is table-driven: a [`TABLE_BITS`]-wide primary lookup maps the
//! next bits of the stream (which hold the bit-reversed code prefix,
//! LSB-first) straight to `(symbol, code_len)`, so the common short codes
//! cost one peek + one consume instead of one bounds-checked read per bit.
//! Codes longer than [`TABLE_BITS`] — vanishingly rare under the skewed
//! residual distribution — fall back to the canonical per-length walk. The
//! bit-serial decoder is kept as [`HuffmanTable::try_decode_reference`]
//! for differential testing.

use crate::bitstream::BitReader;
use crate::error::CfcError;
use std::sync::OnceLock;

/// Maximum code length; fits the `u64` bit-I/O fast path comfortably.
pub const MAX_CODE_LEN: u32 = 32;

/// Width of the primary decode table: 2^11 entries cover every code of the
/// default residual alphabet (radius 512 ⇒ 1025 symbols) in one probe.
pub const TABLE_BITS: u32 = 11;

/// A canonical Huffman code table.
///
/// The encoder LUT and decoder tables are built lazily on first use and
/// cached, so repeated `encode`/`try_decode` calls (four coded sections per
/// LZ block, one table per residual stream) pay construction once.
#[derive(Debug, Clone)]
pub struct HuffmanTable {
    /// Sorted unique symbols with their code lengths, by `(length, symbol)`.
    lengths: Vec<(u32, u32)>,
    /// Canonical code per symbol, aligned with `lengths`.
    codes: Vec<u64>,
    /// Cached `(symbol, code length)` sorted by symbol — the O(log n)
    /// index behind [`HuffmanTable::expected_bits`] (encoder-side only,
    /// so built lazily like the LUTs).
    by_sym: OnceLock<Vec<(u32, u32)>>,
    /// Cached dense encoder LUT: symbol → (bit-reversed code, length).
    enc: OnceLock<Vec<(u64, u32)>>,
    /// Cached table-driven decoder.
    dec: OnceLock<DecodeTable>,
}

impl HuffmanTable {
    /// Finish construction from `(length, symbol)`-sorted lengths.
    fn from_sorted(lengths: Vec<(u32, u32)>) -> Self {
        let codes = assign_canonical(&lengths);
        HuffmanTable {
            lengths,
            codes,
            by_sym: OnceLock::new(),
            enc: OnceLock::new(),
            dec: OnceLock::new(),
        }
    }

    /// Build a table from symbol frequencies (`(symbol, count)`, counts > 0).
    pub fn from_frequencies(freqs: &[(u32, u64)]) -> Self {
        assert!(
            !freqs.is_empty(),
            "cannot build a Huffman table for an empty alphabet"
        );
        let mut lengths = code_lengths(freqs);
        // canonical order: by (length, symbol)
        lengths.sort_by_key(|&(sym, len)| (len, sym));
        Self::from_sorted(lengths)
    }

    /// Count symbols in `data` and build the table.
    ///
    /// Compact alphabets (every production stream: residual codes ≤
    /// 2·radius, LZ byte streams ≤ 255) are counted through a dense
    /// histogram — one cache-resident pass instead of a tree insert per
    /// symbol; pathologically wide alphabets fall back to a map.
    pub fn from_symbols(data: &[u32]) -> Self {
        let max_sym = data.iter().copied().max().unwrap_or(0) as usize;
        // dense counting pays for itself while the histogram stays small
        // relative to the data (and caps the transient allocation)
        let freqs: Vec<(u32, u64)> = if max_sym < (1 << 20).max(data.len() * 4) {
            let mut hist = vec![0u64; max_sym + 1];
            for &s in data {
                hist[s as usize] += 1;
            }
            hist.iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(s, &c)| (s as u32, c))
                .collect()
        } else {
            let mut counts = std::collections::BTreeMap::new();
            for &s in data {
                *counts.entry(s).or_insert(0u64) += 1;
            }
            counts.into_iter().collect()
        };
        Self::from_frequencies(&freqs)
    }

    /// Number of distinct symbols.
    pub fn alphabet_len(&self) -> usize {
        self.lengths.len()
    }

    /// Expected encoded size in bits for the given frequencies.
    pub fn expected_bits(&self, freqs: &[(u32, u64)]) -> u64 {
        let by_sym = self.by_sym.get_or_init(|| {
            let mut v = self.lengths.to_vec();
            v.sort_unstable_by_key(|&(sym, _)| sym);
            v
        });
        let mut total = 0u64;
        for &(sym, count) in freqs {
            if let Ok(i) = by_sym.binary_search_by_key(&sym, |&(s, _)| s) {
                total += count * by_sym[i].1 as u64;
            }
        }
        total
    }

    /// The cached dense encoder LUT (symbol → bit-reversed code + length).
    fn enc_lut(&self) -> &[(u64, u32)] {
        self.enc.get_or_init(|| {
            let max_sym = self.lengths.iter().map(|&(s, _)| s).max().unwrap();
            let mut lut: Vec<(u64, u32)> = vec![(0, 0); max_sym as usize + 1];
            for (pos, &(sym, len)) in self.lengths.iter().enumerate() {
                lut[sym as usize] = (reverse_bits(self.codes[pos], len), len);
            }
            lut
        })
    }

    /// The cached table-driven decoder.
    fn dec_table(&self) -> &DecodeTable {
        self.dec
            .get_or_init(|| DecodeTable::build(&self.lengths, &self.codes))
    }

    /// Encode `data` and return the packed bits.
    ///
    /// Canonical codes are MSB-first; the bitstream is LSB-first, so the
    /// lookup table stores bit-reversed codes — writing them LSB-first puts
    /// the MSB on the stream first, matching the decoder's peek order.
    ///
    /// Panics when `data` contains a symbol absent from the table; use
    /// [`HuffmanTable::try_encode`] to get a typed error instead.
    pub fn encode(&self, data: &[u32]) -> Vec<u8> {
        self.try_encode(data)
            .expect("symbol absent from Huffman table")
    }

    /// Fallible [`HuffmanTable::encode`]: a symbol with no code in this
    /// table — above the largest tabled symbol or simply never counted —
    /// returns [`CfcError::InvalidInput`] instead of panicking (or, worse,
    /// silently emitting zero bits and corrupting the stream).
    pub fn try_encode(&self, data: &[u32]) -> Result<Vec<u8>, CfcError> {
        let mut out = Vec::new();
        self.try_encode_append(data, &mut out)?;
        Ok(out)
    }

    /// [`HuffmanTable::try_encode`] appending to a caller-owned buffer, so
    /// encode loops reuse one allocation across streams (and can stage a
    /// serialized table and its bitstream contiguously).
    ///
    /// The emission loop is word-level: codes accumulate in a local 64-bit
    /// word and flush eight bytes at a time, with symbol *pairs* merged
    /// into one accumulator update when their combined width allows (codes
    /// are ≤ [`MAX_CODE_LEN`] = 32 bits, so any pair fits in 64).
    ///
    /// On error `out` may hold a partial bitstream; callers discard its
    /// contents, not the buffer.
    pub fn try_encode_append(&self, data: &[u32], out: &mut Vec<u8>) -> Result<(), CfcError> {
        #[inline]
        fn lut_get(lut: &[(u64, u32)], s: u32) -> Result<(u64, u32), CfcError> {
            match lut.get(s as usize) {
                Some(&(code, len)) if len > 0 => Ok((code, len)),
                _ => Err(CfcError::InvalidInput(format!(
                    "symbol {s} has no code in this Huffman table"
                ))),
            }
        }
        let lut = self.enc_lut();
        let mut acc = 0u64;
        let mut nbits = 0u32;
        // bits at positions ≥ nbits of acc are zero; flush a full word as
        // soon as it fills, carrying the overflow
        macro_rules! push_bits {
            ($code:expr, $len:expr) => {{
                let (code, len): (u64, u32) = ($code, $len);
                let total = nbits + len;
                if total >= 64 {
                    let merged = acc | (code << nbits);
                    out.extend_from_slice(&merged.to_le_bytes());
                    // nbits == 0 only when len == 64 exactly (a maximal
                    // pair on an empty accumulator): nothing carries
                    acc = if nbits == 0 { 0 } else { code >> (64 - nbits) };
                    nbits = total - 64;
                } else {
                    acc |= code << nbits;
                    nbits = total;
                }
            }};
        }
        let mut pairs = data.chunks_exact(2);
        for pair in &mut pairs {
            let (c0, l0) = lut_get(lut, pair[0])?;
            let (c1, l1) = lut_get(lut, pair[1])?;
            push_bits!(c0 | (c1 << l0), l0 + l1);
        }
        if let [s] = *pairs.remainder() {
            let (code, len) = lut_get(lut, s)?;
            push_bits!(code, len);
        }
        out.extend_from_slice(&acc.to_le_bytes()[..(nbits as usize).div_ceil(8)]);
        Ok(())
    }

    /// Decode `count` symbols from `bits`.
    ///
    /// Panics on corrupt bitstreams; use [`HuffmanTable::try_decode`] for
    /// untrusted input.
    pub fn decode(&self, bits: &[u8], count: usize) -> Vec<u32> {
        self.try_decode(bits, count)
            .expect("corrupt Huffman bitstream")
    }

    /// Fallible decode of `count` symbols from untrusted `bits`.
    ///
    /// Every symbol consumes at least one bit, so a `count` larger than the
    /// bitstream can hold is rejected up front (bounding the allocation by
    /// the input size); exhaustion or an invalid code mid-stream returns a
    /// [`CfcError::Corrupt`].
    pub fn try_decode(&self, bits: &[u8], count: usize) -> Result<Vec<u32>, CfcError> {
        let mut out = Vec::new();
        self.try_decode_into(bits, count, &mut out)?;
        Ok(out)
    }

    /// [`HuffmanTable::try_decode`] into a caller-owned buffer, so block
    /// loops can reuse one allocation across streams. On success `out`
    /// holds exactly `count` symbols; on error its contents are
    /// unspecified (callers discard the buffer's contents, not the buffer).
    pub fn try_decode_into(
        &self,
        bits: &[u8],
        count: usize,
        out: &mut Vec<u32>,
    ) -> Result<(), CfcError> {
        out.clear();
        if count > bits.len().saturating_mul(8) {
            return Err(CfcError::Truncated {
                context: "Huffman bitstream",
                needed: count.div_ceil(8),
                available: bits.len(),
            });
        }
        out.resize(count, 0);
        let dst = out.as_mut_slice();
        let tab = self.dec_table();
        let mut r = BitReader::new(bits);
        let mut i = 0usize;
        // Bulk region: one refill guarantees ≥ 57 accumulator bits — GROUP
        // probes of ≤ TABLE_BITS bits each, with no per-symbol refill or
        // exhaustion checks, and each probe emitting up to PACK_MAX symbols
        // straight from the packed entry. A fallback probe (first code
        // longer than TABLE_BITS, or corrupt bits) ends the group early so
        // the next iteration re-establishes the accumulator guarantee.
        const GROUP: usize = (crate::bitstream::MAX_BITS_PER_CALL / TABLE_BITS) as usize;
        'bulk: while i + GROUP * PACK_MAX <= count && r.can_refill_bulk() {
            r.refill_now();
            for _ in 0..GROUP {
                let entry = tab.primary[r.peek_acc(TABLE_BITS) as usize];
                let n = (entry >> 6) & 0x3;
                if n == 0 {
                    // ≥ 57 bits buffered ≥ MAX_CODE_LEN, so the slow walk
                    // cannot spuriously hit end-of-stream here
                    dst[i] = tab.slow_next(&self.lengths, &mut r)?;
                    i += 1;
                    continue 'bulk;
                }
                r.consume((entry & 0x3F) as u32);
                match n {
                    1 => dst[i] = (entry >> 8) as u32,
                    2 => {
                        dst[i] = ((entry >> 8) & 0xFF_FFFF) as u32;
                        dst[i + 1] = ((entry >> 32) & 0xFF_FFFF) as u32;
                    }
                    _ => {
                        dst[i] = ((entry >> 8) & 0xFFFF) as u32;
                        dst[i + 1] = ((entry >> 24) & 0xFFFF) as u32;
                        dst[i + 2] = ((entry >> 40) & 0xFFFF) as u32;
                    }
                }
                i += n as usize;
            }
        }
        // Tail: the last few symbols (< GROUP·PACK_MAX) or the final < 8
        // bytes of stream — decode bit-serially, which handles truncation
        // and corruption exactly like the reference decoder.
        while i < count {
            dst[i] = tab.slow_next(&self.lengths, &mut r)?;
            i += 1;
        }
        Ok(())
    }

    /// Reference bit-serial decode — one canonical-index walk per
    /// symbol, no primary table — kept for differential testing (the
    /// proptest equivalence suite pits the packed-table fast path against
    /// it) and the perf harness's before/after comparison. Semantically
    /// identical to [`HuffmanTable::try_decode`].
    pub fn try_decode_reference(&self, bits: &[u8], count: usize) -> Result<Vec<u32>, CfcError> {
        if count > bits.len().saturating_mul(8) {
            return Err(CfcError::Truncated {
                context: "Huffman bitstream",
                needed: count.div_ceil(8),
                available: bits.len(),
            });
        }
        let canon = CanonicalIndex::new(&self.lengths);
        let mut r = BitReader::new(bits);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(canon.walk(&self.lengths, &mut r)?);
        }
        Ok(out)
    }

    /// Serialize the `(symbol, length)` table compactly.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.lengths.len() * 5);
        self.serialize_into(&mut out);
        out
    }

    /// [`HuffmanTable::serialize`] appending to a caller-owned buffer, so
    /// encode loops can stage table + bitstream in one reused allocation.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.reserve(4 + self.lengths.len() * 5);
        out.extend_from_slice(&(self.lengths.len() as u32).to_le_bytes());
        for &(sym, len) in &self.lengths {
            out.extend_from_slice(&sym.to_le_bytes());
            out.push(len as u8);
        }
    }

    /// Inverse of [`HuffmanTable::serialize`]; returns the table and bytes consumed.
    ///
    /// Panics on malformed tables; use [`HuffmanTable::try_deserialize`]
    /// for untrusted input.
    pub fn deserialize(bytes: &[u8]) -> (Self, usize) {
        Self::try_deserialize(bytes).expect("corrupt Huffman table")
    }

    /// Fallible table parse from untrusted bytes: validates the entry count
    /// against the buffer, each code length against [`MAX_CODE_LEN`], and
    /// symbol uniqueness (duplicates would silently corrupt canonical code
    /// assignment).
    pub fn try_deserialize(bytes: &[u8]) -> Result<(Self, usize), CfcError> {
        if bytes.len() < 4 {
            return Err(CfcError::Truncated {
                context: "Huffman table header",
                needed: 4,
                available: bytes.len(),
            });
        }
        let n = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        if n == 0 {
            return Err(CfcError::Corrupt {
                context: "Huffman table",
                detail: "empty alphabet".into(),
            });
        }
        let need = 4usize.saturating_add(n.saturating_mul(5));
        if bytes.len() < need {
            return Err(CfcError::Truncated {
                context: "Huffman table body",
                needed: need,
                available: bytes.len(),
            });
        }
        let mut lengths = Vec::with_capacity(n);
        for k in 0..n {
            let off = 4 + k * 5;
            let sym = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let len = bytes[off + 4] as u32;
            if len == 0 || len > MAX_CODE_LEN {
                return Err(CfcError::Corrupt {
                    context: "Huffman table",
                    detail: format!("code length {len} for symbol {sym}"),
                });
            }
            lengths.push((sym, len));
        }
        // duplicate detection must ignore code length: entries below are
        // sorted by (length, symbol), so equal symbols with different
        // lengths would not be adjacent there
        let mut symbols: Vec<u32> = lengths.iter().map(|&(sym, _)| sym).collect();
        symbols.sort_unstable();
        if symbols.windows(2).any(|w| w[0] == w[1]) {
            return Err(CfcError::Corrupt {
                context: "Huffman table",
                detail: "duplicate symbol".into(),
            });
        }
        lengths.sort_by_key(|&(sym, len)| (len, sym));
        Ok((Self::from_sorted(lengths), need))
    }
}

/// Most symbols one packed primary entry can emit.
const PACK_MAX: usize = 3;

/// Table-driven decoder state: a packed multi-symbol primary lookup plus
/// the canonical per-length tables for the (rare) longer codes.
///
/// Primary entries are indexed by the next [`TABLE_BITS`] stream bits
/// (LSB-first, so the low bits hold the bit-reversed first code) and pack:
///
/// ```text
///   bits 0..6   total bits consumed by the packed symbols
///   bits 6..8   symbol count n (0 ⇒ fallback: long code or corrupt bits)
///   n = 1       symbol (u32)  at bits 8..40
///   n = 2       symbols (u24) at bits 8..32 and 32..56
///   n = 3       symbols (u16) at bits 8..24, 24..40, 40..56
/// ```
///
/// Under the skewed residual distribution most windows hold 2–3 complete
/// short codes, so one probe emits several symbols; packs degrade to
/// fewer symbols when the values don't fit the narrower fields.
#[derive(Debug, Clone)]
struct DecodeTable {
    primary: Vec<u64>,
    /// Canonical per-length tables for the bit-serial fallback walk.
    canon: CanonicalIndex,
}

impl DecodeTable {
    fn build(lengths: &[(u32, u32)], codes: &[u64]) -> Self {
        let canon = CanonicalIndex::new(lengths);
        // resolve the first short code of every window: each index whose
        // low `len` bits equal the bit-reversed code decodes to that
        // symbol (prefix-freeness makes the assignment unique)
        let mut single: Vec<(u32, u32)> = vec![(0, 0); 1 << TABLE_BITS];
        for (pos, &(sym, len)) in lengths.iter().enumerate() {
            if len > TABLE_BITS {
                continue;
            }
            let rev = reverse_bits(codes[pos], len) as usize;
            let step = 1usize << len;
            let mut idx = rev;
            while idx < single.len() {
                single[idx] = (sym, len);
                idx += step;
            }
        }
        // pack follow-on codes that fit entirely inside the same window
        let mut primary = vec![0u64; 1 << TABLE_BITS];
        for (idx, slot) in primary.iter_mut().enumerate() {
            let (s1, l1) = single[idx];
            if l1 == 0 {
                continue; // fallback entry
            }
            let mut syms = [s1, 0, 0];
            let mut used = [l1, 0, 0];
            let mut n = 1;
            while n < PACK_MAX {
                let consumed = used[n - 1];
                let (s, l) = single[idx >> consumed];
                if l == 0 || consumed + l > TABLE_BITS {
                    break;
                }
                syms[n] = s;
                used[n] = consumed + l;
                n += 1;
            }
            *slot = if n >= 3 && syms.iter().all(|&s| s < 1 << 16) {
                used[2] as u64
                    | (3 << 6)
                    | ((syms[0] as u64) << 8)
                    | ((syms[1] as u64) << 24)
                    | ((syms[2] as u64) << 40)
            } else if n >= 2 && syms[0] < 1 << 24 && syms[1] < 1 << 24 {
                used[1] as u64 | (2 << 6) | ((syms[0] as u64) << 8) | ((syms[1] as u64) << 32)
            } else {
                used[0] as u64 | (1 << 6) | ((syms[0] as u64) << 8)
            };
        }
        DecodeTable { primary, canon }
    }

    /// Bit-serial decode of one symbol — the fallback for codes longer
    /// than [`TABLE_BITS`], truncated tails, and corrupt prefixes.
    fn slow_next(&self, lengths: &[(u32, u32)], r: &mut BitReader) -> Result<u32, CfcError> {
        self.canon.walk(lengths, r)
    }
}

/// Canonical per-length first-code / first-index tables and the bit-serial
/// decode walk over them — the single implementation shared by the
/// table-driven decoder's fallback and the reference decoder, so the two
/// paths cannot drift apart.
#[derive(Debug, Clone)]
struct CanonicalIndex {
    /// For each length L: (first canonical code of length L, index of its
    /// symbol in the `(length, symbol)`-sorted table).
    first: Vec<(u64, usize)>,
    /// Codes per length.
    count: Vec<usize>,
    max_len: u32,
}

impl CanonicalIndex {
    fn new(lengths: &[(u32, u32)]) -> Self {
        let max_len = lengths.iter().map(|&(_, l)| l).max().unwrap();
        let mut count = vec![0usize; max_len as usize + 1];
        for &(_, l) in lengths {
            count[l as usize] += 1;
        }
        let mut first = vec![(0u64, 0usize); max_len as usize + 1];
        let mut code = 0u64;
        let mut index = 0usize;
        for l in 1..=max_len as usize {
            first[l] = (code, index);
            code = (code + count[l] as u64) << 1;
            index += count[l];
        }
        CanonicalIndex {
            first,
            count,
            max_len,
        }
    }

    /// Decode one symbol (MSB-first canonical codes, read bit-by-bit).
    fn walk(&self, lengths: &[(u32, u32)], r: &mut BitReader) -> Result<u32, CfcError> {
        let mut code = 0u64;
        for l in 1..=self.max_len as usize {
            let bit = r.try_read_bit().ok_or(CfcError::Truncated {
                context: "Huffman bitstream",
                needed: 1,
                available: 0,
            })?;
            code = (code << 1) | bit as u64;
            if self.count[l] > 0 {
                let (fc, fi) = self.first[l];
                let offset = code.wrapping_sub(fc);
                if code >= fc && (offset as usize) < self.count[l] {
                    return Ok(lengths[fi + offset as usize].0);
                }
            }
        }
        Err(CfcError::Corrupt {
            context: "Huffman bitstream",
            detail: format!("no code of length ≤ {} matches", self.max_len),
        })
    }
}

/// Optimal code lengths via the two-queue Huffman algorithm, with depth
/// limiting by frequency flattening when needed.
fn code_lengths(freqs: &[(u32, u64)]) -> Vec<(u32, u32)> {
    if freqs.len() == 1 {
        return vec![(freqs[0].0, 1)];
    }
    let mut flat = 0u32;
    loop {
        let lengths = try_code_lengths(freqs, flat);
        let max = lengths.iter().map(|&(_, l)| l).max().unwrap();
        if max <= MAX_CODE_LEN {
            return lengths;
        }
        // flatten the distribution (shift counts right) until depth fits;
        // only triggered by astronomically skewed inputs
        flat += 4;
        assert!(flat < 64, "cannot limit Huffman depth");
    }
}

fn try_code_lengths(freqs: &[(u32, u64)], flatten: u32) -> Vec<(u32, u32)> {
    #[derive(Debug)]
    struct Node {
        weight: u64,
        kind: NodeKind,
    }
    #[derive(Debug)]
    enum NodeKind {
        Leaf(usize),
        Internal(usize, usize),
    }
    let mut nodes: Vec<Node> = freqs
        .iter()
        .map(|&(_, w)| Node {
            weight: ((w >> flatten).max(1)),
            kind: NodeKind::Leaf(usize::MAX),
        })
        .collect();
    for (i, n) in nodes.iter_mut().enumerate() {
        n.kind = NodeKind::Leaf(i);
    }
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| Reverse((n.weight, i)))
        .collect();
    while heap.len() > 1 {
        let Reverse((wa, a)) = heap.pop().unwrap();
        let Reverse((wb, b)) = heap.pop().unwrap();
        let idx = nodes.len();
        nodes.push(Node {
            weight: wa + wb,
            kind: NodeKind::Internal(a, b),
        });
        heap.push(Reverse((wa + wb, idx)));
    }
    let root = heap.pop().unwrap().0 .1;
    // BFS depths
    let mut lengths = vec![0u32; freqs.len()];
    let mut stack = vec![(root, 0u32)];
    while let Some((n, depth)) = stack.pop() {
        match nodes[n].kind {
            NodeKind::Leaf(sym_idx) => lengths[sym_idx] = depth.max(1),
            NodeKind::Internal(a, b) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
        }
    }
    freqs
        .iter()
        .zip(lengths)
        .map(|(&(s, _), l)| (s, l))
        .collect()
}

/// Reverse the low `len` bits of `code`.
#[inline]
fn reverse_bits(code: u64, len: u32) -> u64 {
    if len == 0 {
        return 0;
    }
    code.reverse_bits() >> (64 - len)
}

/// Assign canonical codes to `(symbol, length)` pairs sorted by (length, symbol).
fn assign_canonical(lengths: &[(u32, u32)]) -> Vec<u64> {
    let mut codes = Vec::with_capacity(lengths.len());
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for &(_, len) in lengths {
        if prev_len != 0 {
            code = (code + 1) << (len - prev_len);
        } else {
            code <<= len; // first code: zeros at the shortest length
        }
        codes.push(code);
        prev_len = len;
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_skewed_distribution() {
        // mimic quantization codes: heavy mass at 512
        let mut data = Vec::new();
        for i in 0..10_000u32 {
            let sym = match i % 100 {
                0..=79 => 512,
                80..=89 => 511,
                90..=95 => 513,
                96..=98 => 500,
                _ => i % 1024,
            };
            data.push(sym);
        }
        let table = HuffmanTable::from_symbols(&data);
        let bits = table.encode(&data);
        assert!(bits.len() * 8 < data.len() * 11, "no compression achieved");
        let dec = table.decode(&bits, data.len());
        assert_eq!(dec, data);
    }

    #[test]
    fn roundtrip_uniform() {
        let data: Vec<u32> = (0..4096).map(|i| i % 256).collect();
        let table = HuffmanTable::from_symbols(&data);
        let dec = table.decode(&table.encode(&data), data.len());
        assert_eq!(dec, data);
    }

    #[test]
    fn single_symbol_alphabet() {
        let data = vec![7u32; 100];
        let table = HuffmanTable::from_symbols(&data);
        assert_eq!(table.alphabet_len(), 1);
        let bits = table.encode(&data);
        let dec = table.decode(&bits, 100);
        assert_eq!(dec, data);
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        let data = [vec![1u32; 70], vec![2u32; 30]].concat();
        let table = HuffmanTable::from_symbols(&data);
        let bits = table.encode(&data);
        assert_eq!(bits.len(), 100usize.div_ceil(8));
    }

    #[test]
    fn table_serialization_roundtrip() {
        let data: Vec<u32> = (0..2000).map(|i| (i * i) % 300).collect();
        let table = HuffmanTable::from_symbols(&data);
        let ser = table.serialize();
        let (table2, used) = HuffmanTable::deserialize(&ser);
        assert_eq!(used, ser.len());
        let bits = table.encode(&data);
        assert_eq!(table2.decode(&bits, data.len()), data);
    }

    #[test]
    fn encoded_size_tracks_entropy() {
        // 90/10 binary source: entropy ≈ 0.469 bits/sym, Huffman gives 1
        // bit/sym; a 4-ary skewed source should beat 2 bits/sym.
        let mut data = Vec::new();
        for i in 0..8000u32 {
            data.push(match i % 16 {
                0..=12 => 0,
                13..=14 => 1,
                15 => 2,
                _ => 3,
            });
        }
        let table = HuffmanTable::from_symbols(&data);
        let bits = table.encode(&data);
        let bps = bits.len() as f64 * 8.0 / data.len() as f64;
        assert!(bps < 1.5, "bits per symbol {bps}");
    }

    #[test]
    fn kraft_inequality_holds() {
        let data: Vec<u32> = (0..5000).map(|i| i % 97).collect();
        let table = HuffmanTable::from_symbols(&data);
        let kraft: f64 = table
            .lengths
            .iter()
            .map(|&(_, l)| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "Kraft sum {kraft}");
    }

    #[test]
    fn duplicate_symbol_across_lengths_rejected() {
        // (sym 5, len 1) and (sym 5, len 2) are non-adjacent after the
        // (length, symbol) sort — the duplicate check must still catch them
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.push(2);
        assert!(matches!(
            HuffmanTable::try_deserialize(&bytes),
            Err(CfcError::Corrupt { .. })
        ));
    }

    #[test]
    fn deep_skew_is_depth_limited() {
        // exponential frequencies force long codes; depth must stay ≤ 32
        let freqs: Vec<(u32, u64)> = (0..40u32).map(|i| (i, 1u64 << (i.min(50)))).collect();
        let table = HuffmanTable::from_frequencies(&freqs);
        let max = table.lengths.iter().map(|&(_, l)| l).max().unwrap();
        assert!(max <= MAX_CODE_LEN);
        // still decodable
        let data: Vec<u32> = (0..40).collect();
        assert_eq!(table.decode(&table.encode(&data), 40), data);
    }

    #[test]
    fn long_codes_take_the_fallback_path() {
        // exponential weights push tail symbols past TABLE_BITS; table and
        // reference decoders must agree anyway
        let freqs: Vec<(u32, u64)> = (0..30u32).map(|i| (i, 1u64 << i)).collect();
        let table = HuffmanTable::from_frequencies(&freqs);
        let deepest = table.lengths.iter().map(|&(_, l)| l).max().unwrap();
        assert!(deepest > TABLE_BITS, "test must exercise the fallback");
        let data: Vec<u32> = (0..30).cycle().take(4000).collect();
        let bits = table.encode(&data);
        let fast = table.try_decode(&bits, data.len()).unwrap();
        let slow = table.try_decode_reference(&bits, data.len()).unwrap();
        assert_eq!(fast, data);
        assert_eq!(fast, slow);
    }

    #[test]
    fn truncated_stream_errors_in_both_decoders() {
        let data: Vec<u32> = (0..1000).map(|i| i % 50).collect();
        let table = HuffmanTable::from_symbols(&data);
        let bits = table.encode(&data);
        for cut in [0, 1, bits.len() / 2, bits.len() - 1] {
            let fast = table.try_decode(&bits[..cut], data.len());
            let slow = table.try_decode_reference(&bits[..cut], data.len());
            assert!(fast.is_err(), "cut {cut} must fail");
            assert_eq!(fast.is_err(), slow.is_err());
        }
    }

    #[test]
    fn absent_symbol_is_a_typed_error_not_a_silent_zero_code() {
        // regression: `encode` used to guard absent symbols with a
        // debug_assert only — release builds emitted a zero-length code and
        // produced an undecodable stream
        let table = HuffmanTable::from_symbols(&[1, 1, 2, 2, 5, 5]);
        // 3 is below max_sym but was never counted: no code
        let err = table.try_encode(&[1, 3, 2]).unwrap_err();
        assert!(matches!(err, CfcError::InvalidInput(_)), "{err:?}");
        // the stream length must not silently shrink either: a valid
        // prefix followed by the bad symbol still errors
        assert!(table.try_encode(&[1, 2, 5, 3]).is_err());
    }

    #[test]
    fn symbol_above_max_sym_is_a_typed_error_not_a_panic() {
        // regression: symbols above the dense LUT's max_sym used to index
        // out of bounds and panic from a public API
        let table = HuffmanTable::from_symbols(&[7, 7, 9]);
        for bad in [10u32, 1000, u32::MAX] {
            let err = table.try_encode(&[7, bad]).unwrap_err();
            assert!(matches!(err, CfcError::InvalidInput(_)), "{bad}: {err:?}");
        }
        // in-table symbols still encode fine through the checked path
        let bits = table.try_encode(&[7, 9, 7]).unwrap();
        assert_eq!(table.decode(&bits, 3), vec![7, 9, 7]);
    }

    #[test]
    fn encode_append_reuses_and_appends() {
        let data: Vec<u32> = (0..500).map(|i| i % 9).collect();
        let table = HuffmanTable::from_symbols(&data);
        let direct = table.encode(&data);
        let mut buf = vec![0xAB, 0xCD];
        table.try_encode_append(&data, &mut buf).unwrap();
        assert_eq!(&buf[..2], &[0xAB, 0xCD]);
        assert_eq!(&buf[2..], &direct[..]);
        // steady state: same stream through the warmed buffer reallocates
        // nothing
        buf.clear();
        let cap = buf.capacity();
        table.try_encode_append(&data, &mut buf).unwrap();
        assert_eq!(buf, direct);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn word_level_emission_matches_reference_decoder_on_long_codes() {
        // deep table: code pairs span the 64-bit accumulator boundary in
        // every alignment, including the maximal 32+32 pair
        let freqs: Vec<(u32, u64)> = (0..40u32).map(|i| (i, 1u64 << i.min(50))).collect();
        let table = HuffmanTable::from_frequencies(&freqs);
        let data: Vec<u32> = (0..40u32).rev().cycle().take(5000).collect();
        let bits = table.encode(&data);
        assert_eq!(table.try_decode_reference(&bits, data.len()).unwrap(), data);
        assert_eq!(table.try_decode(&bits, data.len()).unwrap(), data);
        // odd-length input exercises the unpaired-tail path
        let odd = &data[..4999];
        let bits = table.encode(odd);
        assert_eq!(table.try_decode_reference(&bits, odd.len()).unwrap(), odd);
    }

    #[test]
    fn dense_and_map_counting_build_identical_tables() {
        // the wide-alphabet fallback must produce the same canonical table
        // as dense counting does for the same multiset of symbols
        let data: Vec<u32> = (0..4000u32).map(|i| (i * i) % 700).collect();
        let wide: Vec<u32> = data.iter().map(|&s| s * (1 << 22)).collect();
        let t1 = HuffmanTable::from_symbols(&wide);
        let mut counts = std::collections::BTreeMap::new();
        for &s in &wide {
            *counts.entry(s).or_insert(0u64) += 1;
        }
        let freqs: Vec<(u32, u64)> = counts.into_iter().collect();
        let t2 = HuffmanTable::from_frequencies(&freqs);
        assert_eq!(t1.serialize(), t2.serialize());
        assert_eq!(t1.encode(&wide), t2.encode(&wide));
    }

    #[test]
    fn serialize_into_matches_serialize() {
        let table = HuffmanTable::from_symbols(&[1, 1, 1, 4, 4, 200]);
        let mut buf = vec![9u8];
        table.serialize_into(&mut buf);
        assert_eq!(buf[0], 9);
        assert_eq!(&buf[1..], &table.serialize()[..]);
    }

    #[test]
    fn expected_bits_matches_encoded_len() {
        let data: Vec<u32> = (0..4000).map(|i| (i * 7) % 120).collect();
        let table = HuffmanTable::from_symbols(&data);
        let mut counts = std::collections::BTreeMap::new();
        for &s in &data {
            *counts.entry(s).or_insert(0u64) += 1;
        }
        let freqs: Vec<(u32, u64)> = counts.into_iter().collect();
        let expect = table.expected_bits(&freqs);
        let actual = table.encode(&data).len() * 8;
        assert!(expect as usize <= actual && actual < expect as usize + 8);
        // unknown symbols contribute nothing
        assert_eq!(table.expected_bits(&[(9999, 100)]), 0);
    }
}
