//! Canonical Huffman coding over arbitrary `u32` symbol alphabets.
//!
//! SZ's "customized Huffman" stage: quantization codes concentrate heavily
//! around the zero-residual code, so entropy coding them is where most of
//! the compression ratio comes from. We build optimal code lengths with the
//! classic heap algorithm, limit depth to [`MAX_CODE_LEN`] (by frequency
//! flattening on the rare pathological inputs), and transmit only the
//! `(symbol, length)` table — canonical code assignment reconstructs the
//! exact codes on the decoder side.

use crate::bitstream::{BitReader, BitWriter};
use crate::error::CfcError;

/// Maximum code length; fits the `u64` bit-I/O fast path comfortably.
pub const MAX_CODE_LEN: u32 = 32;

/// A canonical Huffman code table.
#[derive(Debug, Clone)]
pub struct HuffmanTable {
    /// Sorted unique symbols with their code lengths.
    lengths: Vec<(u32, u32)>,
    /// Canonical code per symbol, aligned with `lengths`.
    codes: Vec<u64>,
}

impl HuffmanTable {
    /// Build a table from symbol frequencies (`(symbol, count)`, counts > 0).
    pub fn from_frequencies(freqs: &[(u32, u64)]) -> Self {
        assert!(
            !freqs.is_empty(),
            "cannot build a Huffman table for an empty alphabet"
        );
        let mut lengths = code_lengths(freqs);
        // canonical order: by (length, symbol)
        lengths.sort_by_key(|&(sym, len)| (len, sym));
        let codes = assign_canonical(&lengths);
        HuffmanTable { lengths, codes }
    }

    /// Count symbols in `data` and build the table.
    pub fn from_symbols(data: &[u32]) -> Self {
        let mut counts = std::collections::BTreeMap::new();
        for &s in data {
            *counts.entry(s).or_insert(0u64) += 1;
        }
        let freqs: Vec<(u32, u64)> = counts.into_iter().collect();
        Self::from_frequencies(&freqs)
    }

    /// Number of distinct symbols.
    pub fn alphabet_len(&self) -> usize {
        self.lengths.len()
    }

    /// Expected encoded size in bits for the given frequencies.
    pub fn expected_bits(&self, freqs: &[(u32, u64)]) -> u64 {
        let mut total = 0u64;
        for &(sym, count) in freqs {
            if let Some(pos) = self.position(sym) {
                total += count * self.lengths[pos].1 as u64;
            }
        }
        total
    }

    fn position(&self, sym: u32) -> Option<usize> {
        // lengths are sorted by (len, sym); fall back to a scan (tables are
        // small — ≤ 1025 entries for the residual alphabet)
        self.lengths.iter().position(|&(s, _)| s == sym)
    }

    /// Encode `data` and return the packed bits.
    ///
    /// Canonical codes are MSB-first; the bit writer is LSB-first, so the
    /// lookup table stores bit-reversed codes — writing them LSB-first puts
    /// the MSB on the stream first, matching the bit-serial decoder.
    pub fn encode(&self, data: &[u32]) -> Vec<u8> {
        // build a dense lookup when the alphabet is contiguous-ish
        let max_sym = self.lengths.iter().map(|&(s, _)| s).max().unwrap();
        let mut lut: Vec<(u64, u32)> = vec![(0, 0); max_sym as usize + 1];
        for (pos, &(sym, len)) in self.lengths.iter().enumerate() {
            lut[sym as usize] = (reverse_bits(self.codes[pos], len), len);
        }
        let mut w = BitWriter::new();
        for &s in data {
            let (code, len) = lut[s as usize];
            debug_assert!(len > 0, "symbol {s} not in table");
            w.write_bits(code, len);
        }
        w.finish()
    }

    /// Decode `count` symbols from `bits`.
    ///
    /// Panics on corrupt bitstreams; use [`HuffmanTable::try_decode`] for
    /// untrusted input.
    pub fn decode(&self, bits: &[u8], count: usize) -> Vec<u32> {
        self.try_decode(bits, count)
            .expect("corrupt Huffman bitstream")
    }

    /// Fallible decode of `count` symbols from untrusted `bits`.
    ///
    /// Every symbol consumes at least one bit, so a `count` larger than the
    /// bitstream can hold is rejected up front (bounding the allocation by
    /// the input size); exhaustion or an invalid code mid-stream returns a
    /// [`CfcError::Corrupt`].
    pub fn try_decode(&self, bits: &[u8], count: usize) -> Result<Vec<u32>, CfcError> {
        if count > bits.len().saturating_mul(8) {
            return Err(CfcError::Truncated {
                context: "Huffman bitstream",
                needed: count.div_ceil(8),
                available: bits.len(),
            });
        }
        let decoder = CanonicalDecoder::new(&self.lengths);
        let mut r = BitReader::new(bits);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(decoder.try_next(&mut r)?);
        }
        Ok(out)
    }

    /// Serialize the `(symbol, length)` table compactly.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.lengths.len() * 5);
        out.extend_from_slice(&(self.lengths.len() as u32).to_le_bytes());
        for &(sym, len) in &self.lengths {
            out.extend_from_slice(&sym.to_le_bytes());
            out.push(len as u8);
        }
        out
    }

    /// Inverse of [`HuffmanTable::serialize`]; returns the table and bytes consumed.
    ///
    /// Panics on malformed tables; use [`HuffmanTable::try_deserialize`]
    /// for untrusted input.
    pub fn deserialize(bytes: &[u8]) -> (Self, usize) {
        Self::try_deserialize(bytes).expect("corrupt Huffman table")
    }

    /// Fallible table parse from untrusted bytes: validates the entry count
    /// against the buffer, each code length against [`MAX_CODE_LEN`], and
    /// symbol uniqueness (duplicates would silently corrupt canonical code
    /// assignment).
    pub fn try_deserialize(bytes: &[u8]) -> Result<(Self, usize), CfcError> {
        if bytes.len() < 4 {
            return Err(CfcError::Truncated {
                context: "Huffman table header",
                needed: 4,
                available: bytes.len(),
            });
        }
        let n = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        if n == 0 {
            return Err(CfcError::Corrupt {
                context: "Huffman table",
                detail: "empty alphabet".into(),
            });
        }
        let need = 4usize.saturating_add(n.saturating_mul(5));
        if bytes.len() < need {
            return Err(CfcError::Truncated {
                context: "Huffman table body",
                needed: need,
                available: bytes.len(),
            });
        }
        let mut lengths = Vec::with_capacity(n);
        for k in 0..n {
            let off = 4 + k * 5;
            let sym = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let len = bytes[off + 4] as u32;
            if len == 0 || len > MAX_CODE_LEN {
                return Err(CfcError::Corrupt {
                    context: "Huffman table",
                    detail: format!("code length {len} for symbol {sym}"),
                });
            }
            lengths.push((sym, len));
        }
        // duplicate detection must ignore code length: entries below are
        // sorted by (length, symbol), so equal symbols with different
        // lengths would not be adjacent there
        let mut symbols: Vec<u32> = lengths.iter().map(|&(sym, _)| sym).collect();
        symbols.sort_unstable();
        if symbols.windows(2).any(|w| w[0] == w[1]) {
            return Err(CfcError::Corrupt {
                context: "Huffman table",
                detail: "duplicate symbol".into(),
            });
        }
        lengths.sort_by_key(|&(sym, len)| (len, sym));
        let codes = assign_canonical(&lengths);
        Ok((HuffmanTable { lengths, codes }, need))
    }
}

/// Canonical decoder: per-length first-code / first-index tables.
struct CanonicalDecoder<'a> {
    lengths: &'a [(u32, u32)],
    /// For each length L: (first canonical code of length L, index of its symbol).
    first: Vec<(u64, usize)>,
    count: Vec<usize>,
    max_len: u32,
}

impl<'a> CanonicalDecoder<'a> {
    fn new(lengths: &'a [(u32, u32)]) -> Self {
        let max_len = lengths.iter().map(|&(_, l)| l).max().unwrap();
        let mut count = vec![0usize; max_len as usize + 1];
        for &(_, l) in lengths {
            count[l as usize] += 1;
        }
        let mut first = vec![(0u64, 0usize); max_len as usize + 1];
        let mut code = 0u64;
        let mut index = 0usize;
        for l in 1..=max_len as usize {
            first[l] = (code, index);
            code = (code + count[l] as u64) << 1;
            index += count[l];
        }
        CanonicalDecoder {
            lengths,
            first,
            count,
            max_len,
        }
    }

    /// Decode one symbol (MSB-first canonical codes, so we read bit-by-bit).
    fn try_next(&self, r: &mut BitReader) -> Result<u32, CfcError> {
        let mut code = 0u64;
        for l in 1..=self.max_len as usize {
            let bit = r.try_read_bit().ok_or(CfcError::Truncated {
                context: "Huffman bitstream",
                needed: 1,
                available: 0,
            })?;
            code = (code << 1) | bit as u64;
            if self.count[l] > 0 {
                let (fc, fi) = self.first[l];
                let offset = code.wrapping_sub(fc);
                if code >= fc && (offset as usize) < self.count[l] {
                    return Ok(self.lengths[fi + offset as usize].0);
                }
            }
        }
        Err(CfcError::Corrupt {
            context: "Huffman bitstream",
            detail: format!("no code of length ≤ {} matches", self.max_len),
        })
    }
}

/// Optimal code lengths via the two-queue Huffman algorithm, with depth
/// limiting by frequency flattening when needed.
fn code_lengths(freqs: &[(u32, u64)]) -> Vec<(u32, u32)> {
    if freqs.len() == 1 {
        return vec![(freqs[0].0, 1)];
    }
    let mut flat = 0u32;
    loop {
        let lengths = try_code_lengths(freqs, flat);
        let max = lengths.iter().map(|&(_, l)| l).max().unwrap();
        if max <= MAX_CODE_LEN {
            return lengths;
        }
        // flatten the distribution (shift counts right) until depth fits;
        // only triggered by astronomically skewed inputs
        flat += 4;
        assert!(flat < 64, "cannot limit Huffman depth");
    }
}

fn try_code_lengths(freqs: &[(u32, u64)], flatten: u32) -> Vec<(u32, u32)> {
    #[derive(Debug)]
    struct Node {
        weight: u64,
        kind: NodeKind,
    }
    #[derive(Debug)]
    enum NodeKind {
        Leaf(usize),
        Internal(usize, usize),
    }
    let mut nodes: Vec<Node> = freqs
        .iter()
        .map(|&(_, w)| Node {
            weight: ((w >> flatten).max(1)),
            kind: NodeKind::Leaf(usize::MAX),
        })
        .collect();
    for (i, n) in nodes.iter_mut().enumerate() {
        n.kind = NodeKind::Leaf(i);
    }
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| Reverse((n.weight, i)))
        .collect();
    while heap.len() > 1 {
        let Reverse((wa, a)) = heap.pop().unwrap();
        let Reverse((wb, b)) = heap.pop().unwrap();
        let idx = nodes.len();
        nodes.push(Node {
            weight: wa + wb,
            kind: NodeKind::Internal(a, b),
        });
        heap.push(Reverse((wa + wb, idx)));
    }
    let root = heap.pop().unwrap().0 .1;
    // BFS depths
    let mut lengths = vec![0u32; freqs.len()];
    let mut stack = vec![(root, 0u32)];
    while let Some((n, depth)) = stack.pop() {
        match nodes[n].kind {
            NodeKind::Leaf(sym_idx) => lengths[sym_idx] = depth.max(1),
            NodeKind::Internal(a, b) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
        }
    }
    freqs
        .iter()
        .zip(lengths)
        .map(|(&(s, _), l)| (s, l))
        .collect()
}

/// Reverse the low `len` bits of `code`.
#[inline]
fn reverse_bits(code: u64, len: u32) -> u64 {
    let mut out = 0u64;
    for b in 0..len {
        out |= ((code >> b) & 1) << (len - 1 - b);
    }
    out
}

/// Assign canonical codes to `(symbol, length)` pairs sorted by (length, symbol).
fn assign_canonical(lengths: &[(u32, u32)]) -> Vec<u64> {
    let mut codes = Vec::with_capacity(lengths.len());
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for &(_, len) in lengths {
        if prev_len != 0 {
            code = (code + 1) << (len - prev_len);
        } else {
            code <<= len; // first code: zeros at the shortest length
        }
        codes.push(code);
        prev_len = len;
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_skewed_distribution() {
        // mimic quantization codes: heavy mass at 512
        let mut data = Vec::new();
        for i in 0..10_000u32 {
            let sym = match i % 100 {
                0..=79 => 512,
                80..=89 => 511,
                90..=95 => 513,
                96..=98 => 500,
                _ => i % 1024,
            };
            data.push(sym);
        }
        let table = HuffmanTable::from_symbols(&data);
        let bits = table.encode(&data);
        assert!(bits.len() * 8 < data.len() * 11, "no compression achieved");
        let dec = table.decode(&bits, data.len());
        assert_eq!(dec, data);
    }

    #[test]
    fn roundtrip_uniform() {
        let data: Vec<u32> = (0..4096).map(|i| i % 256).collect();
        let table = HuffmanTable::from_symbols(&data);
        let dec = table.decode(&table.encode(&data), data.len());
        assert_eq!(dec, data);
    }

    #[test]
    fn single_symbol_alphabet() {
        let data = vec![7u32; 100];
        let table = HuffmanTable::from_symbols(&data);
        assert_eq!(table.alphabet_len(), 1);
        let bits = table.encode(&data);
        let dec = table.decode(&bits, 100);
        assert_eq!(dec, data);
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        let data = [vec![1u32; 70], vec![2u32; 30]].concat();
        let table = HuffmanTable::from_symbols(&data);
        let bits = table.encode(&data);
        assert_eq!(bits.len(), 100usize.div_ceil(8));
    }

    #[test]
    fn table_serialization_roundtrip() {
        let data: Vec<u32> = (0..2000).map(|i| (i * i) % 300).collect();
        let table = HuffmanTable::from_symbols(&data);
        let ser = table.serialize();
        let (table2, used) = HuffmanTable::deserialize(&ser);
        assert_eq!(used, ser.len());
        let bits = table.encode(&data);
        assert_eq!(table2.decode(&bits, data.len()), data);
    }

    #[test]
    fn encoded_size_tracks_entropy() {
        // 90/10 binary source: entropy ≈ 0.469 bits/sym, Huffman gives 1
        // bit/sym; a 4-ary skewed source should beat 2 bits/sym.
        let mut data = Vec::new();
        for i in 0..8000u32 {
            data.push(match i % 16 {
                0..=12 => 0,
                13..=14 => 1,
                15 => 2,
                _ => 3,
            });
        }
        let table = HuffmanTable::from_symbols(&data);
        let bits = table.encode(&data);
        let bps = bits.len() as f64 * 8.0 / data.len() as f64;
        assert!(bps < 1.5, "bits per symbol {bps}");
    }

    #[test]
    fn kraft_inequality_holds() {
        let data: Vec<u32> = (0..5000).map(|i| i % 97).collect();
        let table = HuffmanTable::from_symbols(&data);
        let kraft: f64 = table
            .lengths
            .iter()
            .map(|&(_, l)| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "Kraft sum {kraft}");
    }

    #[test]
    fn duplicate_symbol_across_lengths_rejected() {
        // (sym 5, len 1) and (sym 5, len 2) are non-adjacent after the
        // (length, symbol) sort — the duplicate check must still catch them
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.push(2);
        assert!(matches!(
            HuffmanTable::try_deserialize(&bytes),
            Err(CfcError::Corrupt { .. })
        ));
    }

    #[test]
    fn deep_skew_is_depth_limited() {
        // exponential frequencies force long codes; depth must stay ≤ 32
        let freqs: Vec<(u32, u64)> = (0..40u32).map(|i| (i, 1u64 << (i.min(50)))).collect();
        let table = HuffmanTable::from_frequencies(&freqs);
        let max = table.lengths.iter().map(|&(_, l)| l).max().unwrap();
        assert!(max <= MAX_CODE_LEN);
        // still decodable
        let data: Vec<u32> = (0..40).collect();
        assert_eq!(table.decode(&table.encode(&data), 40), data);
    }
}
