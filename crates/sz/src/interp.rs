//! SZ3-style multi-level interpolation codec.
//!
//! SZ3's third predictor family (Liang et al., "SZ3: A modular framework…")
//! refines the grid level by level: anchor points at the coarsest stride are
//! transmitted first, then every level halves the stride, predicting each
//! new point by linear interpolation of its two already-decoded neighbours
//! along one axis. Unlike Lorenzo, the scan order is *level order*, so this
//! codec owns its traversal instead of implementing [`crate::predict::Predictor`].
//!
//! Provided for substrate completeness: interpolation and Lorenzo have
//! complementary strengths (Lorenzo is exact on low-order polynomials,
//! interpolation wins at aggressive bounds on real data), which is why SZ3
//! selects between them per dataset. The cross-field hybrid of this paper composes with Lorenzo
//! (paper §III-C); composing it with interpolation is listed as future work.

use cfc_tensor::Shape;

use crate::lattice::QuantLattice;
use crate::quantizer::{EncodedResiduals, QuantizerConfig};

/// Encode a lattice in level order. Returns residual codes (one per
/// non-anchor point, in traversal order), outliers, and the raw anchor
/// values (in anchor scan order).
pub fn encode(lattice: &QuantLattice, quant: &QuantizerConfig) -> (EncodedResiduals, Vec<i64>) {
    let mut codes = Vec::with_capacity(lattice.len());
    let mut outliers = Vec::new();
    let mut anchors = Vec::new();
    traverse(lattice.shape(), |kind, off, pred_offs| match kind {
        PointKind::Anchor => anchors.push(lattice.as_slice()[off]),
        PointKind::Interpolated => {
            let pred = interp_value(lattice.as_slice(), pred_offs);
            let q = lattice.as_slice()[off];
            let (code, out) = quant.encode_one(q - pred, q);
            codes.push(code);
            if let Some(v) = out {
                outliers.push(v);
            }
        }
    });
    (EncodedResiduals { codes, outliers }, anchors)
}

/// Decode a level-order stream produced by [`encode`].
pub fn decode(
    shape: Shape,
    codes: &[u32],
    outliers: &[i64],
    anchors: &[i64],
    quant: &QuantizerConfig,
) -> QuantLattice {
    let mut lattice = QuantLattice::zeros(shape);
    let mut code_iter = codes.iter();
    let mut out_iter = outliers.iter();
    let mut anchor_iter = anchors.iter();
    traverse(shape, |kind, off, pred_offs| match kind {
        PointKind::Anchor => {
            lattice.as_mut_slice()[off] = *anchor_iter.next().expect("anchor stream exhausted");
        }
        PointKind::Interpolated => {
            let code = *code_iter.next().expect("code stream exhausted");
            let value = match quant.decode_one(code) {
                Ok(delta) => interp_value(lattice.as_slice(), pred_offs) + delta,
                Err(()) => *out_iter.next().expect("outlier stream exhausted"),
            };
            lattice.as_mut_slice()[off] = value;
        }
    });
    assert!(
        code_iter.next().is_none(),
        "trailing codes — corrupt stream"
    );
    assert!(
        out_iter.next().is_none(),
        "trailing outliers — corrupt stream"
    );
    lattice
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PointKind {
    Anchor,
    Interpolated,
}

/// Linear interpolation from 1–2 neighbour offsets.
#[inline]
fn interp_value(data: &[i64], preds: (usize, Option<usize>)) -> i64 {
    match preds {
        (a, Some(b)) => (data[a] + data[b]) >> 1,
        (a, None) => data[a],
    }
}

/// Visit every point in level order, telling the callback whether it is an
/// anchor or an interpolated point and which offsets predict it. Encoder and
/// decoder share this traversal, which guarantees lockstep.
fn traverse(shape: Shape, mut visit: impl FnMut(PointKind, usize, (usize, Option<usize>))) {
    let ndim = shape.ndim();
    let dims: Vec<usize> = shape.dims().to_vec();
    let strides = shape.strides();

    // coarsest power-of-two stride that still has >1 anchor on the longest axis
    let max_dim = *dims.iter().max().unwrap();
    let mut s0 = 1usize;
    while s0 * 2 < max_dim {
        s0 *= 2;
    }

    // anchors: all coords multiples of s0 (in plain scan order)
    for_each_grid(&dims, &vec![s0; ndim], |idx| {
        let off = linear(idx, &strides, ndim);
        visit(PointKind::Anchor, off, (0, None));
    });

    // refinement: per level, per axis
    let mut s = s0;
    while s >= 2 {
        let half = s / 2;
        for axis in 0..ndim {
            // grid for this pass: axes < axis already refined to `half`,
            // axes > axis still at `s`; the current axis takes odd multiples
            // of `half`
            let mut steps = vec![0usize; ndim];
            for (k, step) in steps.iter_mut().enumerate() {
                *step = match k.cmp(&axis) {
                    std::cmp::Ordering::Less => half,
                    std::cmp::Ordering::Equal => s, // stepped from `half` start
                    std::cmp::Ordering::Greater => s,
                };
            }
            let stride_ax = strides[axis];
            for_each_grid_offset(&dims, &steps, axis, half, |idx| {
                let off = linear(idx, &strides, ndim);
                let left = off - half * stride_ax;
                let right_coord = idx[axis] + half;
                let right = if right_coord < dims[axis] {
                    Some(off + half * stride_ax)
                } else {
                    None
                };
                visit(PointKind::Interpolated, off, (left, right));
            });
        }
        s = half;
    }
}

#[inline]
fn linear(idx: &[usize], strides: &[usize; 3], ndim: usize) -> usize {
    let mut off = 0;
    for k in 0..ndim {
        off += idx[k] * strides[k];
    }
    off
}

/// Visit all lattice points whose coordinate on every axis is a multiple of
/// that axis's step.
fn for_each_grid(dims: &[usize], steps: &[usize], mut f: impl FnMut(&[usize])) {
    let ndim = dims.len();
    let mut idx = vec![0usize; ndim];
    loop {
        f(&idx);
        // odometer
        let mut k = ndim;
        loop {
            if k == 0 {
                return;
            }
            k -= 1;
            idx[k] += steps[k];
            if idx[k] < dims[k] {
                break;
            }
            idx[k] = 0;
            if k == 0 {
                return;
            }
        }
    }
}

/// Like [`for_each_grid`] but the `offset_axis` starts at `offset` (odd
/// multiples of the half-stride).
fn for_each_grid_offset(
    dims: &[usize],
    steps: &[usize],
    offset_axis: usize,
    offset: usize,
    mut f: impl FnMut(&[usize]),
) {
    if offset >= dims[offset_axis] {
        return;
    }
    let ndim = dims.len();
    let mut idx = vec![0usize; ndim];
    idx[offset_axis] = offset;
    loop {
        f(&idx);
        let mut k = ndim;
        loop {
            if k == 0 {
                return;
            }
            k -= 1;
            idx[k] += steps[k];
            let lo = if k == offset_axis { offset } else { 0 };
            if idx[k] < dims[k] {
                break;
            }
            idx[k] = lo;
            if k == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(lat: &QuantLattice, radius: u32) {
        let quant = QuantizerConfig { radius };
        let (enc, anchors) = encode(lat, &quant);
        let dec = decode(lat.shape(), &enc.codes, &enc.outliers, &anchors, &quant);
        assert_eq!(dec.as_slice(), lat.as_slice());
    }

    #[test]
    fn traversal_visits_every_point_once() {
        for shape in [Shape::d1(37), Shape::d2(13, 21), Shape::d3(5, 9, 12)] {
            let mut seen = vec![0u8; shape.len()];
            traverse(shape, |_, off, _| seen[off] += 1);
            assert!(seen.iter().all(|&c| c == 1), "{shape}: {:?}", &seen[..20]);
        }
    }

    #[test]
    fn roundtrip_2d_smooth() {
        let mut data = Vec::new();
        for i in 0..40i64 {
            for j in 0..56i64 {
                data.push(i * 3 + j * 2 + ((i + j) % 4));
            }
        }
        roundtrip(&QuantLattice::from_vec(Shape::d2(40, 56), data), 512);
    }

    #[test]
    fn roundtrip_3d() {
        let mut data = Vec::new();
        for k in 0..7i64 {
            for i in 0..11i64 {
                for j in 0..9i64 {
                    data.push(k * k * 5 - i * 2 + j + ((k * i * j) % 7));
                }
            }
        }
        roundtrip(&QuantLattice::from_vec(Shape::d3(7, 11, 9), data), 512);
    }

    #[test]
    fn roundtrip_with_outliers() {
        let data: Vec<i64> = (0..25 * 25)
            .map(|o| {
                if o % 13 == 0 {
                    1_000_000
                } else {
                    (o % 17) as i64
                }
            })
            .collect();
        roundtrip(&QuantLattice::from_vec(Shape::d2(25, 25), data), 8);
    }

    #[test]
    fn roundtrip_1d() {
        let data: Vec<i64> = (0..100).map(|v| (v as i64 * v as i64) % 91).collect();
        roundtrip(&QuantLattice::from_vec(Shape::d1(100), data), 256);
    }

    #[test]
    fn roundtrip_non_power_of_two_dims() {
        for (r, c) in [(3usize, 3usize), (17, 5), (2, 31), (63, 65)] {
            let data: Vec<i64> = (0..r * c).map(|o| (o * 7 % 23) as i64).collect();
            roundtrip(&QuantLattice::from_vec(Shape::d2(r, c), data), 64);
        }
    }

    #[test]
    fn interp_entropy_is_competitive_on_smooth_data() {
        // a slowly varying paraboloid — note this is Lorenzo's best case
        // (2-D Lorenzo is exact up to the constant curvature term), so the
        // honest claim is competitiveness, not dominance; SZ3 selects
        // between the two predictors per dataset for exactly this reason
        use crate::codec;
        use crate::predict::LorenzoPredictor;
        let (r, c) = (64usize, 64usize);
        let data: Vec<i64> = (0..r * c)
            .map(|o| {
                let (i, j) = ((o / c) as f64, (o % c) as f64);
                ((i - 32.0).powi(2) * 0.8 + (j - 32.0).powi(2) * 0.5) as i64
            })
            .collect();
        let lat = QuantLattice::from_vec(Shape::d2(r, c), data);
        let quant = QuantizerConfig::default();
        let (interp_enc, _) = encode(&lat, &quant);
        let lorenzo_enc = codec::encode(&lat, &LorenzoPredictor, &quant);
        // entropy (bits/symbol) is what the Huffman stage actually pays;
        // interpolation concentrates fine-level residuals near zero even
        // though its few coarse-level residuals are large
        let entropy = |codes: &[u32]| -> f64 {
            let mut counts = std::collections::HashMap::new();
            for &c in codes {
                *counts.entry(c).or_insert(0u64) += 1;
            }
            let n = codes.len() as f64;
            counts
                .values()
                .map(|&c| {
                    let p = c as f64 / n;
                    -p * p.log2()
                })
                .sum()
        };
        let h_interp = entropy(&interp_enc.codes);
        let h_lorenzo = entropy(&lorenzo_enc.codes);
        assert!(
            h_interp < h_lorenzo + 1.0,
            "interp entropy {h_interp:.3} should stay within 1 bit of lorenzo {h_lorenzo:.3}"
        );
    }
}
