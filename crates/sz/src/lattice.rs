//! Integer lattice produced by prequantization.
//!
//! After dual-quant's first step every sample is an integer multiple of
//! `2·eb`; all prediction happens on those integers, so compression and
//! decompression are bit-exact mirrors of each other.

use cfc_tensor::{Field, Shape};

/// Prequantized field: `q[i] = round(v[i] / (2·eb))` stored as `i64`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantLattice {
    shape: Shape,
    data: Vec<i64>,
}

impl QuantLattice {
    /// Prequantize a field at absolute bound `eb` (dual-quant step 1).
    pub fn prequantize(field: &Field, eb: f64) -> Self {
        assert!(eb > 0.0 && eb.is_finite());
        let step = 2.0 * eb;
        let data = field
            .as_slice()
            .iter()
            .map(|&v| {
                debug_assert!(v.is_finite(), "non-finite sample {v}");
                (v as f64 / step).round() as i64
            })
            .collect();
        QuantLattice {
            shape: field.shape(),
            data,
        }
    }

    /// Zero lattice (decoder scratch).
    pub fn zeros(shape: Shape) -> Self {
        QuantLattice {
            shape,
            data: vec![0; shape.len()],
        }
    }

    /// Wrap raw integers.
    pub fn from_vec(shape: Shape, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), shape.len());
        QuantLattice { shape, data }
    }

    /// Dequantize back to values (dual-quant reconstruction).
    pub fn reconstruct(&self, eb: f64) -> Field {
        let step = 2.0 * eb;
        Field::from_vec(
            self.shape,
            self.data
                .iter()
                .map(|&q| (q as f64 * step) as f32)
                .collect(),
        )
    }

    /// Shape of the lattice.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty (impossible by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw integers.
    #[inline]
    pub fn as_slice(&self) -> &[i64] {
        &self.data
    }

    /// Mutable raw integers.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [i64] {
        &mut self.data
    }

    /// Value at linear offset.
    #[inline]
    pub fn at(&self, offset: usize) -> i64 {
        self.data[offset]
    }

    /// 2-D accessor with zero padding outside the boundary (the SZ
    /// convention: out-of-range neighbours predict 0).
    #[inline]
    pub fn get2(&self, i: isize, j: isize) -> i64 {
        let dims = self.shape.dims();
        if i < 0 || j < 0 || i >= dims[0] as isize || j >= dims[1] as isize {
            0
        } else {
            self.data[i as usize * dims[1] + j as usize]
        }
    }

    /// 3-D accessor with zero padding outside the boundary.
    #[inline]
    pub fn get3(&self, k: isize, i: isize, j: isize) -> i64 {
        let dims = self.shape.dims();
        if k < 0
            || i < 0
            || j < 0
            || k >= dims[0] as isize
            || i >= dims[1] as isize
            || j >= dims[2] as isize
        {
            0
        } else {
            self.data[(k as usize * dims[1] + i as usize) * dims[2] + j as usize]
        }
    }

    /// 1-D accessor with zero padding.
    #[inline]
    pub fn get1(&self, i: isize) -> i64 {
        if i < 0 || i >= self.data.len() as isize {
            0
        } else {
            self.data[i as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prequant_respects_error_bound() {
        let f = Field::from_vec(Shape::d1(5), vec![0.0, 0.1234, -3.7, 88.8, 1e-6]);
        let eb = 1e-3;
        let q = QuantLattice::prequantize(&f, eb);
        let r = q.reconstruct(eb);
        for (a, b) in f.as_slice().iter().zip(r.as_slice()) {
            assert!((a - b).abs() as f64 <= eb + 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn prequant_is_idempotent_on_lattice_points() {
        let eb = 0.5;
        let f = Field::from_vec(Shape::d1(3), vec![1.0, 2.0, -4.0]);
        let q = QuantLattice::prequantize(&f, eb);
        let r = q.reconstruct(eb);
        let q2 = QuantLattice::prequantize(&r, eb);
        assert_eq!(q.as_slice(), q2.as_slice());
    }

    #[test]
    fn get2_pads_with_zero() {
        let q = QuantLattice::from_vec(Shape::d2(2, 2), vec![1, 2, 3, 4]);
        assert_eq!(q.get2(-1, 0), 0);
        assert_eq!(q.get2(0, -1), 0);
        assert_eq!(q.get2(2, 0), 0);
        assert_eq!(q.get2(1, 1), 4);
    }

    #[test]
    fn get3_pads_with_zero() {
        let q = QuantLattice::from_vec(Shape::d3(2, 2, 2), (1..=8).collect());
        assert_eq!(q.get3(-1, 0, 0), 0);
        assert_eq!(q.get3(0, 0, 0), 1);
        assert_eq!(q.get3(1, 1, 1), 8);
        assert_eq!(q.get3(0, 2, 0), 0);
    }

    #[test]
    fn reconstruct_scales_by_twice_eb() {
        let q = QuantLattice::from_vec(Shape::d1(3), vec![0, 1, -2]);
        let f = q.reconstruct(0.25);
        assert_eq!(f.as_slice(), &[0.0, 0.5, -1.0]);
    }
}
