//! `cfc-sz` — an SZ3-style prediction-based error-bounded lossy compressor
//! behind a unified, fallible [`Codec`] API.
//!
//! This crate is the substrate the paper's contribution plugs into. It
//! reimplements, from scratch, the full pipeline of a modern
//! prediction-based scientific compressor:
//!
//! ```text
//!   field ──► prequantize ──► predict ──► postquantize ──► Huffman ──► LZSS ──► bytes
//!            (dual-quant,      (Lorenzo /   (codes +        (canonical)  (deflate-
//!             error-bounded)    pluggable)    outliers)                    like)
//! ```
//!
//! * **Unified fallible API** ([`api`]): every compressor implements
//!   [`Codec`] — `compress(&Field) -> Result<EncodedStream, CfcError>` /
//!   `decompress(&[u8]) -> Result<Field, CfcError>`. The decode path is
//!   *total*: malformed, truncated, or adversarial bytes return
//!   [`CfcError`], never panic, so streams can be accepted from untrusted
//!   sources. The cross-field codec and the multi-field archive in
//!   `cfc-core` implement/compose the same trait.
//! * **Dual quantization** (paper §III-D1, after cuSZ): values are snapped to
//!   the `2·eb` lattice *before* prediction, eliminating the read-after-write
//!   dependency of classic SZ and guaranteeing `|v − v'| ≤ eb` regardless of
//!   the predictor. Compression-side prediction is embarrassingly parallel.
//! * **Pluggable predictors** over the integer lattice ([`predict`]):
//!   Lorenzo (1/2/3-D), block regression, and a central-difference predictor
//!   kept solely to demonstrate the decode-order conflict of paper Fig. 3.
//!   The cross-field + hybrid predictor of the paper lives in `cfc-core` and
//!   implements the same [`predict::Predictor`] trait.
//! * **Entropy stage**: canonical Huffman over quantization codes
//!   ([`huffman`]), backed by a bit-level I/O layer ([`bitstream`]).
//! * **Lossless back-end**: an LZSS + Huffman byte compressor ([`lossless`])
//!   standing in for zstd.
//! * **Self-describing container** ([`stream`]): magic, version, shape,
//!   bound, and tagged sections, validated end to end by
//!   [`stream::Container::try_from_bytes`].
//!
//! The baseline implementation of [`Codec`] is [`SzCompressor`].

pub mod api;
pub mod bitstream;
pub mod codec;
pub mod compressor;
pub mod crc;
pub mod error;
pub mod error_bound;
pub mod huffman;
pub mod interp;
pub mod lattice;
pub mod lossless;
pub mod predict;
pub mod quantizer;
pub mod scratch;
pub mod stream;

pub use api::{Codec, EncodedStream};
pub use compressor::{PredictorKind, SzCompressor};
pub use crc::crc32;
pub use error::CfcError;
pub use error_bound::ErrorBound;
pub use lattice::QuantLattice;
pub use predict::{CentralDiffPredictor, LorenzoPredictor, Predictor, RegressionPredictor};
pub use quantizer::{QuantizerConfig, DEFAULT_RADIUS};
pub use scratch::{DecodeScratch, EncodeScratch, PooledScratch, ScratchPool};
