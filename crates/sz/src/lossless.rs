//! LZSS + Huffman lossless byte compressor (the zstd stand-in).
//!
//! SZ3 pipes its Huffman-coded residuals through zstd; runs of identical
//! quantization codes survive entropy coding as repeated byte patterns, so a
//! dictionary pass still pays off. We implement a deflate-flavoured scheme:
//!
//! * **lazy LZSS over a hash-chain matcher** (window 64 KiB, matches 4–258
//!   bytes): candidates come from per-hash chains of prior positions
//!   (`MAX_CHAIN` deep, with `NICE_LEN`/`GOOD_LEN` early exits in the
//!   zlib tradition), matches extend eight bytes per compare via `u64`
//!   XOR + trailing-zeros, and the parse is *lazy with one-step deferral* —
//!   a strictly longer match starting one byte later demotes the current
//!   match to a literal. Positions skipped by a match insert into the
//!   chains on a bounded budget, and stretches that produce no matches are
//!   probed increasingly sparsely (LZ4-style acceleration), so
//!   incompressible data degrades to near-memcpy cost;
//! * tokens split into three streams — a flag bitmap, literal bytes, and
//!   match `(length, distance)` records — each Huffman-coded independently,
//! * incompressible inputs fall back to stored mode, so the worst-case
//!   expansion is exactly the 1-byte mode header ([`compress`]'s
//!   `input.len() + 1` contract). An entropy lower bound on the token
//!   streams skips the Huffman stage entirely when even an ideal coder
//!   could not beat stored mode.
//!
//! Steady-state encode is allocation-free through [`LzScratch`]
//! (chains, token buffers, and stream staging all reused across blocks);
//! [`compress`] is a thin wrapper that pays for a fresh scratch.

use crate::bitstream::{BitReader, BitWriter};
use crate::error::CfcError;
use crate::huffman::HuffmanTable;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 258;
const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 15;

/// Hash-chain candidates examined per position before giving up.
const MAX_CHAIN: usize = 48;
/// A match this long is good enough: stop the chain walk immediately and
/// skip the lazy probe.
const NICE_LEN: usize = 128;
/// With a match this long already in hand, the lazy probe searches a
/// quarter of the usual chain depth.
const GOOD_LEN: usize = 32;
/// After `2^ACCEL_LOG` consecutive match misses, each further miss skips
/// one more position outright (LZ4-style acceleration on incompressible
/// stretches).
const ACCEL_LOG: usize = 5;
/// Acceleration cap: never skip more than this many positions per probe.
const MAX_SKIP: usize = 32;
/// Budget of skipped-in-match positions inserted into the chains (half at
/// the match head, half right before its end).
const INSERT_LIMIT: usize = 32;
/// Chain positions are `u32` (sentinel `u32::MAX`); longer inputs fall
/// back to stored mode rather than index out of range.
const MAX_LZ_INPUT: usize = (u32::MAX as usize) - 1;

/// Container mode byte.
const MODE_STORED: u8 = 0;
const MODE_LZ: u8 = 1;

/// Reusable state for the compress path: hash-chain arrays, the token
/// list, and the per-stream staging buffers. A worker owns one and passes
/// it to [`compress_with`]; after the first block every buffer has
/// steady-state capacity (it is embedded in
/// [`crate::EncodeScratch`] for exactly that purpose).
#[derive(Debug, Default)]
pub struct LzScratch {
    /// Most recent position per hash bucket (`u32::MAX` = empty).
    head: Vec<u32>,
    /// Previous position with the same hash, per position.
    prev: Vec<u32>,
    /// Parsed token sequence.
    tokens: Vec<Token>,
    /// Literal byte stream (as Huffman symbols).
    literals: Vec<u32>,
    /// Match length stream (biased by `MIN_MATCH`).
    lens: Vec<u32>,
    /// Match distance low bytes.
    dist_lo: Vec<u32>,
    /// Match distance high bytes.
    dist_hi: Vec<u32>,
    /// Flag bitmap bytes.
    flag_buf: Vec<u8>,
}

impl LzScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total capacity across all internal buffers — monotone, so a stable
    /// sum across calls proves steady state allocates nothing new.
    pub(crate) fn cap_sum(&self) -> usize {
        self.head.capacity()
            + self.prev.capacity()
            + self.tokens.capacity()
            + self.literals.capacity()
            + self.lens.capacity()
            + self.dist_lo.capacity()
            + self.dist_hi.capacity()
            + self.flag_buf.capacity()
    }
}

/// Compress arbitrary bytes. Never fails; stored-mode fallback bounds the
/// output at exactly `input.len() + 1` bytes (the 1-byte mode header) for
/// incompressible data.
pub fn compress(input: &[u8]) -> Vec<u8> {
    compress_with(input, &mut LzScratch::new())
}

/// [`compress`] with reusable scratch buffers — identical output bytes,
/// but the hash chains, token list, and stream staging live in `scratch`,
/// so per-block encode loops stop allocating after the first block.
pub fn compress_with(input: &[u8], scratch: &mut LzScratch) -> Vec<u8> {
    if input.len() < 64 || input.len() > MAX_LZ_INPUT {
        return stored(input);
    }
    lz_parse(input, scratch);
    match encode_tokens_with(input.len(), scratch) {
        Some(out) if out.len() < input.len() => out,
        _ => stored(input),
    }
}

/// Bench/diagnostic probe: run only the LZ parse stage over `input` and
/// return the token count (0 for inputs the parser would not see). Not
/// part of the compression API — it exists so the perf harness can time
/// the match search separately from entropy coding.
pub fn parse_probe(input: &[u8], scratch: &mut LzScratch) -> usize {
    if input.len() > MAX_LZ_INPUT {
        return 0;
    }
    lz_parse(input, scratch);
    scratch.tokens.len()
}

/// Decompress bytes produced by [`compress`].
///
/// Panics on corrupt input; use [`try_decompress`] for untrusted bytes.
pub fn decompress(input: &[u8]) -> Vec<u8> {
    try_decompress(input).expect("corrupt lossless stream")
}

/// Fallible decompression of untrusted bytes: every structural violation
/// (unknown mode, truncated section, invalid LZ distance, length mismatch)
/// returns a [`CfcError`] instead of panicking.
pub fn try_decompress(input: &[u8]) -> Result<Vec<u8>, CfcError> {
    try_decompress_bounded(input, usize::MAX)
}

/// [`try_decompress`] with an output-size budget.
///
/// LZSS expands up to ~2000× (a decompression bomb), so decode paths that
/// know how large a payload can legitimately be pass that bound here; a
/// stream claiming more returns [`CfcError::Corrupt`] before any
/// proportional allocation happens.
pub fn try_decompress_bounded(input: &[u8], max_len: usize) -> Result<Vec<u8>, CfcError> {
    let mut out = Vec::new();
    try_decompress_bounded_into(input, max_len, &mut out)?;
    Ok(out)
}

/// [`try_decompress_bounded`] into a caller-owned buffer, so block loops
/// can reuse one allocation across streams. `out` is cleared first; on
/// error its contents are unspecified.
pub fn try_decompress_bounded_into(
    input: &[u8],
    max_len: usize,
    out: &mut Vec<u8>,
) -> Result<(), CfcError> {
    out.clear();
    match input.first() {
        None => Err(CfcError::Truncated {
            context: "lossless mode byte",
            needed: 1,
            available: 0,
        }),
        Some(&MODE_STORED) => {
            if input.len() - 1 > max_len {
                return Err(CfcError::Corrupt {
                    context: "lossless stream",
                    detail: format!(
                        "stored payload {} exceeds budget {max_len}",
                        input.len() - 1
                    ),
                });
            }
            out.extend_from_slice(&input[1..]);
            Ok(())
        }
        Some(&MODE_LZ) => decode_tokens(&input[1..], max_len, out),
        Some(&m) => Err(CfcError::Corrupt {
            context: "lossless stream",
            detail: format!("unknown mode byte {m}"),
        }),
    }
}

fn stored(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() + 1);
    out.push(MODE_STORED);
    out.extend_from_slice(input);
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain matcher state borrowed from [`LzScratch`].
struct Matcher<'a> {
    input: &'a [u8],
    head: &'a mut [u32],
    prev: &'a mut [u32],
}

impl Matcher<'_> {
    /// Insert position `i` into its hash chain without searching (used for
    /// positions a match skips over). Caller guarantees `i + 4 <= n`.
    #[inline]
    fn insert(&mut self, i: usize) {
        let h = hash4(&self.input[i..]);
        self.prev[i] = self.head[h];
        self.head[h] = i as u32;
    }

    /// Walk the chain at `i`'s hash for the longest prior match, then
    /// insert `i`. Returns `(len, dist)`; `len < MIN_MATCH` means no
    /// usable match. Caller guarantees `i + 4 <= n`.
    #[inline]
    fn find_and_insert(&mut self, i: usize, max_chain: usize) -> (usize, usize) {
        let input = self.input;
        let n = input.len();
        let h = hash4(&input[i..]);
        let mut cand = self.head[h];
        self.prev[i] = cand;
        self.head[h] = i as u32;

        let max_len = (n - i).min(MAX_MATCH);
        // chains hold strictly decreasing positions, so once a candidate
        // falls out of the window the whole rest of the chain has too
        let min_pos = (i + 1).saturating_sub(WINDOW) as u32;
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut chain = max_chain;
        while cand != u32::MAX && cand >= min_pos && chain > 0 {
            let c = cand as usize;
            // one-byte probe at the current best length rejects most
            // candidates without paying for a full extension
            if input[c + best_len] == input[i + best_len] {
                let l = match_len(&input[c..], &input[i..], max_len);
                if l > best_len {
                    best_len = l;
                    best_dist = i - c;
                    if l >= max_len || l >= NICE_LEN {
                        break;
                    }
                }
            }
            cand = self.prev[c];
            chain -= 1;
        }
        (best_len, best_dist)
    }
}

/// Longest common prefix of `a` and `b`, capped at `max`. Both slices must
/// hold at least `max` bytes; compares eight at a time via `u64` XOR.
#[inline]
fn match_len(a: &[u8], b: &[u8], max: usize) -> usize {
    let mut l = 0usize;
    while l + 8 <= max {
        let x = u64::from_le_bytes(a[l..l + 8].try_into().unwrap());
        let y = u64::from_le_bytes(b[l..l + 8].try_into().unwrap());
        let diff = x ^ y;
        if diff != 0 {
            return l + (diff.trailing_zeros() >> 3) as usize;
        }
        l += 8;
    }
    while l < max && a[l] == b[l] {
        l += 1;
    }
    l
}

/// Lazy hash-chain LZ parse into `scratch.tokens`.
fn lz_parse(input: &[u8], scratch: &mut LzScratch) {
    let n = input.len();
    scratch.tokens.clear();
    scratch.head.clear();
    scratch.head.resize(1 << HASH_BITS, u32::MAX);
    scratch.prev.clear();
    scratch.prev.resize(n, u32::MAX);
    let mut m = Matcher {
        input,
        head: &mut scratch.head,
        prev: &mut scratch.prev,
    };
    let tokens = &mut scratch.tokens;

    let mut i = 0usize;
    let mut misses = 0usize;
    while i < n {
        if i + MIN_MATCH > n {
            tokens.push(Token::Literal(input[i]));
            i += 1;
            continue;
        }
        let (mut len, mut dist) = m.find_and_insert(i, MAX_CHAIN);
        if len < MIN_MATCH {
            tokens.push(Token::Literal(input[i]));
            i += 1;
            // acceleration: on a stretch with no matches, probe the chains
            // increasingly sparsely and emit the skipped bytes as literals
            misses += 1;
            let skip = (misses >> ACCEL_LOG).min(MAX_SKIP).min(n - i);
            for _ in 0..skip {
                tokens.push(Token::Literal(input[i]));
                i += 1;
            }
            continue;
        }
        misses = 0;
        // lazy one-step deferral: a strictly longer match starting at the
        // next byte wins, and the current byte becomes a literal
        let mut start = i;
        let mut probed = false;
        if len < NICE_LEN && i + 1 + MIN_MATCH <= n {
            let chain = if len >= GOOD_LEN {
                MAX_CHAIN / 4
            } else {
                MAX_CHAIN
            };
            let (len2, dist2) = m.find_and_insert(i + 1, chain);
            probed = true;
            if len2 > len {
                tokens.push(Token::Literal(input[i]));
                start = i + 1;
                len = len2;
                dist = dist2;
            }
        }
        tokens.push(Token::Match {
            len: len as u16,
            dist: dist as u16,
        });
        // positions i (and i+1 when the lazy probe ran) are already in the
        // chains; insert a bounded number of the remaining skipped
        // positions — half at the head, half right before the match end so
        // the next search can chain off the tail
        let mut k = i + 1 + probed as usize;
        let insert_end = (start + len).min(n.saturating_sub(MIN_MATCH));
        if insert_end.saturating_sub(k) <= INSERT_LIMIT {
            while k < insert_end {
                m.insert(k);
                k += 1;
            }
        } else {
            let head_end = k + INSERT_LIMIT / 2;
            while k < head_end {
                m.insert(k);
                k += 1;
            }
            let mut t = insert_end - INSERT_LIMIT / 2;
            while t < insert_end {
                m.insert(t);
                t += 1;
            }
        }
        i = start + len;
    }
}

/// Split the parsed tokens into streams and entropy-code them.
///
/// Returns `None` when an entropy lower bound proves the coded form cannot
/// beat stored mode — exactly the cases where the caller would have
/// discarded the full encoding anyway, so the output decision is identical
/// to always encoding. On `Some`, the buffer includes the mode byte.
fn encode_tokens_with(raw_len: usize, s: &mut LzScratch) -> Option<Vec<u8>> {
    s.literals.clear();
    s.lens.clear();
    s.dist_lo.clear();
    s.dist_hi.clear();
    s.flag_buf.clear();
    let mut flags = BitWriter::append_to(std::mem::take(&mut s.flag_buf));
    let mut lit_hist = [0u64; 256];
    for t in &s.tokens {
        match *t {
            Token::Literal(b) => {
                flags.write_bit(false);
                s.literals.push(b as u32);
                lit_hist[b as usize] += 1;
            }
            Token::Match { len, dist } => {
                flags.write_bit(true);
                s.lens.push(len as u32 - MIN_MATCH as u32);
                s.dist_lo.push((dist & 0xFF) as u32);
                s.dist_hi.push((dist >> 8) as u32);
            }
        }
    }
    s.flag_buf = flags.finish();
    let ntokens = s.tokens.len();
    let nlit = s.literals.len();
    let nmatch = s.lens.len();

    // Lower-bound the coded size before paying for the Huffman stage:
    // headers and the flag bitmap are exact, a prefix code cannot beat the
    // Shannon entropy of the literal stream, every non-empty coded section
    // carries >= 17 bytes of count + table, and each match costs >= 1 bit
    // in each of the three match streams.
    let mut lit_bits = 0.0f64;
    if nlit > 0 {
        let total = nlit as f64;
        for &c in &lit_hist {
            if c > 0 {
                lit_bits += c as f64 * (total / c as f64).log2();
            }
        }
    }
    let mut lower = 1 + 16 + 8 + s.flag_buf.len() + 4 * 8;
    if nlit > 0 {
        lower += 17 + (lit_bits / 8.0) as usize;
    }
    if nmatch > 0 {
        lower += 3 * 17 + 3 * nmatch.div_ceil(8);
    }
    if lower >= raw_len {
        return None;
    }

    let mut out = Vec::with_capacity((raw_len / 2).max(64));
    out.push(MODE_LZ);
    out.extend_from_slice(&(raw_len as u64).to_le_bytes());
    out.extend_from_slice(&(ntokens as u64).to_le_bytes());
    write_section(&mut out, &s.flag_buf);
    write_coded(&mut out, &s.literals);
    write_coded(&mut out, &s.lens);
    write_coded(&mut out, &s.dist_lo);
    write_coded(&mut out, &s.dist_hi);
    Some(out)
}

fn write_section(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Huffman-code a symbol stream; empty streams are a zero-length section.
/// The section length prefix is patched in place after encoding, so the
/// table and bits land directly in `out` with no staging copy.
fn write_coded(out: &mut Vec<u8>, symbols: &[u32]) {
    if symbols.is_empty() {
        out.extend_from_slice(&0u64.to_le_bytes());
        return;
    }
    let len_at = out.len();
    out.extend_from_slice(&0u64.to_le_bytes()); // placeholder section length
    let start = out.len();
    out.extend_from_slice(&(symbols.len() as u64).to_le_bytes());
    let table = HuffmanTable::from_symbols(symbols);
    table.serialize_into(out);
    table
        .try_encode_append(symbols, out)
        .expect("table was built from these symbols");
    let section_len = (out.len() - start) as u64;
    out[len_at..len_at + 8].copy_from_slice(&section_len.to_le_bytes());
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, CfcError> {
    if *pos + 8 > bytes.len() {
        return Err(CfcError::Truncated {
            context: "lossless header",
            needed: 8,
            available: bytes.len().saturating_sub(*pos),
        });
    }
    let v = u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().unwrap());
    *pos += 8;
    Ok(v)
}

fn read_section<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], CfcError> {
    let len = read_u64(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or(CfcError::Truncated {
            context: "lossless section",
            needed: len,
            available: bytes.len().saturating_sub(*pos),
        })?;
    let s = &bytes[*pos..end];
    *pos = end;
    Ok(s)
}

fn read_coded(bytes: &[u8], pos: &mut usize) -> Result<Vec<u32>, CfcError> {
    let section = read_section(bytes, pos)?;
    if section.is_empty() {
        return Ok(Vec::new());
    }
    if section.len() < 8 {
        return Err(CfcError::Truncated {
            context: "coded section header",
            needed: 8,
            available: section.len(),
        });
    }
    let count = u64::from_le_bytes(section[0..8].try_into().unwrap()) as usize;
    let (table, used) = HuffmanTable::try_deserialize(&section[8..])?;
    table.try_decode(&section[8 + used..], count)
}

fn decode_tokens(bytes: &[u8], max_len: usize, out: &mut Vec<u8>) -> Result<(), CfcError> {
    let mut pos = 0usize;
    let raw_len = read_u64(bytes, &mut pos)? as usize;
    if raw_len > max_len {
        return Err(CfcError::Corrupt {
            context: "lossless stream",
            detail: format!("claimed size {raw_len} exceeds budget {max_len}"),
        });
    }
    let ntokens = read_u64(bytes, &mut pos)? as usize;
    let flag_bytes = read_section(bytes, &mut pos)?;
    // one flag bit per token bounds the token count by the flag section, so
    // the loop below — and the output allocation — stay proportional to the
    // actual input size no matter what the header claims
    if ntokens > flag_bytes.len().saturating_mul(8) {
        return Err(CfcError::Corrupt {
            context: "lossless stream",
            detail: format!("{ntokens} tokens exceed {} flag bits", flag_bytes.len() * 8),
        });
    }
    if raw_len > ntokens.saturating_mul(MAX_MATCH) && !(ntokens == 0 && raw_len == 0) {
        return Err(CfcError::Corrupt {
            context: "lossless stream",
            detail: format!("claimed size {raw_len} unreachable from {ntokens} tokens"),
        });
    }
    let literals = read_coded(bytes, &mut pos)?;
    let lens = read_coded(bytes, &mut pos)?;
    let dist_lo = read_coded(bytes, &mut pos)?;
    let dist_hi = read_coded(bytes, &mut pos)?;

    let corrupt = |detail: String| CfcError::Corrupt {
        context: "LZ token stream",
        detail,
    };
    // cap the upfront allocation; genuinely large outputs grow amortized,
    // while a hostile header can't demand gigabytes before decoding starts
    out.reserve(raw_len.min(1 << 24));
    let mut flags = BitReader::new(flag_bytes);
    let (mut li, mut mi) = (0usize, 0usize);
    for _ in 0..ntokens {
        // bound checked above: ntokens flags always fit the section
        if flags.read_bit() {
            let (&l, &lo, &hi) = match (lens.get(mi), dist_lo.get(mi), dist_hi.get(mi)) {
                (Some(l), Some(lo), Some(hi)) => (l, lo, hi),
                _ => return Err(corrupt(format!("match stream exhausted at token {mi}"))),
            };
            let len = l as usize + MIN_MATCH;
            let dist = (lo | (hi << 8)) as usize;
            mi += 1;
            if dist < 1 || dist > out.len() {
                return Err(corrupt(format!("distance {dist} at offset {}", out.len())));
            }
            if out.len() + len > raw_len {
                return Err(corrupt("output overruns claimed size".into()));
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            let &b = literals
                .get(li)
                .ok_or_else(|| corrupt(format!("literal stream exhausted at token {li}")))?;
            if out.len() == raw_len {
                return Err(corrupt("output overruns claimed size".into()));
            }
            out.push(b as u8);
            li += 1;
        }
    }
    if out.len() != raw_len {
        return Err(corrupt(format!(
            "decompressed {} bytes, header claims {raw_len}",
            out.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c);
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello world");
    }

    #[test]
    fn repetitive_compresses_well() {
        let data: Vec<u8> = b"abcdefgh".iter().cycle().take(10_000).cloned().collect();
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 4,
            "ratio too low: {} / {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c), data);
    }

    #[test]
    fn long_zero_runs() {
        let mut data = vec![0u8; 50_000];
        data[100] = 7;
        data[40_000] = 9;
        let c = compress(&data);
        assert!(c.len() < 2_000);
        assert_eq!(decompress(&c), data);
    }

    #[test]
    fn incompressible_falls_back_to_stored() {
        // pseudo-random bytes
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..5_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let c = compress(&data);
        // the documented worst case is exactly the 1-byte stored-mode header
        assert!(
            c.len() <= data.len() + 1,
            "stored fallback must cost exactly one header byte, got {} for {}",
            c.len(),
            data.len()
        );
        assert_eq!(c[0], MODE_STORED);
        assert_eq!(decompress(&c), data);
    }

    #[test]
    fn worst_case_expansion_is_one_byte_across_sizes() {
        // incompressible inputs of many sizes (including < 64 and the
        // entropy-early-exit range) all hit the `input.len() + 1` contract
        let mut x = 0x9E3779B9u32;
        let mut rand_byte = move || {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            (x >> 24) as u8
        };
        for n in [0usize, 1, 63, 64, 65, 200, 1024, 4096] {
            let data: Vec<u8> = (0..n).map(|_| rand_byte()).collect();
            let c = compress(&data);
            assert!(
                c.len() <= data.len() + 1,
                "n={n}: compressed {} > {} + 1",
                c.len(),
                data.len()
            );
            assert_eq!(decompress(&c), data, "n={n}");
        }
    }

    #[test]
    fn compress_with_matches_compress_and_reuses_scratch() {
        let mut scratch = LzScratch::new();
        let inputs: Vec<Vec<u8>> = vec![
            b"abcdefgh".iter().cycle().take(10_000).cloned().collect(),
            vec![0u8; 30_000],
            (0..=255u8).cycle().take(4096).collect(),
            {
                let mut x = 0xDEADBEEFu32;
                (0..5_000)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 17;
                        x ^= x << 5;
                        (x >> 24) as u8
                    })
                    .collect()
            },
        ];
        // warm-up pass sizes the buffers; second pass must be identical
        // output with zero capacity growth
        for data in &inputs {
            assert_eq!(compress_with(data, &mut scratch), compress(data));
        }
        let cap = scratch.cap_sum();
        for data in &inputs {
            assert_eq!(compress_with(data, &mut scratch), compress(data));
        }
        assert_eq!(scratch.cap_sum(), cap, "steady-state scratch grew");
    }

    #[test]
    fn parse_probe_counts_tokens() {
        let mut scratch = LzScratch::new();
        let data = vec![b'z'; 10_000];
        let ntok = parse_probe(&data, &mut scratch);
        assert!(ntok > 0);
        // a long single-byte run parses to literals + a few long matches
        assert!(ntok < 100, "run of 10k should parse to few tokens: {ntok}");
    }

    #[test]
    fn overlapping_matches() {
        // "aaaa..." forces overlapping copies (dist 1, long len)
        let data = vec![b'a'; 1000];
        let c = compress(&data);
        // a handful of tokens + fixed per-section headers
        assert!(c.len() < 220, "len {}", c.len());
        assert_eq!(decompress(&c), data);
    }

    #[test]
    fn structured_binary() {
        // alternating record-like structure, typical of Huffman output headers
        let mut data = Vec::new();
        for i in 0..3000u32 {
            data.extend_from_slice(&(i % 17).to_le_bytes());
        }
        roundtrip(&data);
        let c = compress(&data);
        assert!(c.len() < data.len() / 2);
    }

    #[test]
    fn match_at_window_edge() {
        // repeat beyond the 64K window: must still round-trip (just without
        // cross-window matches)
        let pattern: Vec<u8> = (0..=255u8).collect();
        let data: Vec<u8> = pattern.iter().cycle().take(200_000).cloned().collect();
        roundtrip(&data);
    }

    #[test]
    fn bounded_decompress_rejects_bombs() {
        // a highly repetitive buffer decompresses fine unbounded but must be
        // rejected when it exceeds the caller's budget
        let data = vec![7u8; 100_000];
        let c = compress(&data);
        assert_eq!(try_decompress_bounded(&c, 100_000).unwrap(), data);
        assert!(matches!(
            try_decompress_bounded(&c, 50_000),
            Err(CfcError::Corrupt { .. })
        ));
        // stored mode respects the budget too
        let tiny = compress(b"abc");
        assert!(try_decompress_bounded(&tiny, 2).is_err());
        assert_eq!(try_decompress_bounded(&tiny, 3).unwrap(), b"abc");
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        roundtrip(&data);
    }
}
