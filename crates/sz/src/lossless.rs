//! LZSS + Huffman lossless byte compressor (the zstd stand-in).
//!
//! SZ3 pipes its Huffman-coded residuals through zstd; runs of identical
//! quantization codes survive entropy coding as repeated byte patterns, so a
//! dictionary pass still pays off. We implement a deflate-flavoured scheme:
//!
//! * greedy LZSS with a hash-chain matcher (window 64 KiB, matches 4–258
//!   bytes),
//! * tokens split into three streams — a flag bitmap, literal bytes, and
//!   match `(length, distance)` records — each Huffman-coded independently,
//! * incompressible inputs fall back to stored mode (1-byte header keeps the
//!   worst-case expansion negligible).

use crate::bitstream::{BitReader, BitWriter};
use crate::error::CfcError;
use crate::huffman::HuffmanTable;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 258;
const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 48;

/// Container mode byte.
const MODE_STORED: u8 = 0;
const MODE_LZ: u8 = 1;

/// Compress arbitrary bytes. Never fails; output may be up to
/// `input.len() + 9` bytes for incompressible data.
pub fn compress(input: &[u8]) -> Vec<u8> {
    if input.len() < 64 {
        return stored(input);
    }
    let tokens = lz_parse(input);
    let encoded = encode_tokens(&tokens, input.len());
    if encoded.len() + 1 >= input.len() {
        stored(input)
    } else {
        let mut out = Vec::with_capacity(encoded.len() + 1);
        out.push(MODE_LZ);
        out.extend_from_slice(&encoded);
        out
    }
}

/// Decompress bytes produced by [`compress`].
///
/// Panics on corrupt input; use [`try_decompress`] for untrusted bytes.
pub fn decompress(input: &[u8]) -> Vec<u8> {
    try_decompress(input).expect("corrupt lossless stream")
}

/// Fallible decompression of untrusted bytes: every structural violation
/// (unknown mode, truncated section, invalid LZ distance, length mismatch)
/// returns a [`CfcError`] instead of panicking.
pub fn try_decompress(input: &[u8]) -> Result<Vec<u8>, CfcError> {
    try_decompress_bounded(input, usize::MAX)
}

/// [`try_decompress`] with an output-size budget.
///
/// LZSS expands up to ~2000× (a decompression bomb), so decode paths that
/// know how large a payload can legitimately be pass that bound here; a
/// stream claiming more returns [`CfcError::Corrupt`] before any
/// proportional allocation happens.
pub fn try_decompress_bounded(input: &[u8], max_len: usize) -> Result<Vec<u8>, CfcError> {
    let mut out = Vec::new();
    try_decompress_bounded_into(input, max_len, &mut out)?;
    Ok(out)
}

/// [`try_decompress_bounded`] into a caller-owned buffer, so block loops
/// can reuse one allocation across streams. `out` is cleared first; on
/// error its contents are unspecified.
pub fn try_decompress_bounded_into(
    input: &[u8],
    max_len: usize,
    out: &mut Vec<u8>,
) -> Result<(), CfcError> {
    out.clear();
    match input.first() {
        None => Err(CfcError::Truncated {
            context: "lossless mode byte",
            needed: 1,
            available: 0,
        }),
        Some(&MODE_STORED) => {
            if input.len() - 1 > max_len {
                return Err(CfcError::Corrupt {
                    context: "lossless stream",
                    detail: format!(
                        "stored payload {} exceeds budget {max_len}",
                        input.len() - 1
                    ),
                });
            }
            out.extend_from_slice(&input[1..]);
            Ok(())
        }
        Some(&MODE_LZ) => decode_tokens(&input[1..], max_len, out),
        Some(&m) => Err(CfcError::Corrupt {
            context: "lossless stream",
            detail: format!("unknown mode byte {m}"),
        }),
    }
}

fn stored(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() + 1);
    out.push(MODE_STORED);
    out.extend_from_slice(input);
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Greedy hash-chain LZ parse.
fn lz_parse(input: &[u8]) -> Vec<Token> {
    let n = input.len();
    let mut tokens = Vec::with_capacity(n / 2);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; n];
    let mut i = 0usize;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash4(&input[i..]);
            let mut cand = head[h];
            let mut chain = 0usize;
            while cand != usize::MAX && chain < MAX_CHAIN {
                let dist = i - cand;
                if dist > WINDOW - 1 {
                    break;
                }
                // extend match
                let max_len = (n - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < max_len && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l >= MAX_MATCH {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
            // insert current position into the chain
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len as u16,
                dist: best_dist as u16,
            });
            // insert skipped positions (cheap partial insertion keeps the
            // matcher effective without the full cost)
            let insert_until = (i + best_len).min(n.saturating_sub(MIN_MATCH));
            let mut k = i + 1;
            while k < insert_until {
                let h = hash4(&input[k..]);
                prev[k] = head[h];
                head[h] = k;
                k += 1;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(input[i]));
            i += 1;
        }
    }
    tokens
}

/// Encode the token streams: header, Huffman tables, then payloads.
fn encode_tokens(tokens: &[Token], raw_len: usize) -> Vec<u8> {
    let mut flags = BitWriter::new();
    let mut literals: Vec<u32> = Vec::new();
    let mut lens: Vec<u32> = Vec::new();
    let mut dist_lo: Vec<u32> = Vec::new();
    let mut dist_hi: Vec<u32> = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                flags.write_bit(false);
                literals.push(b as u32);
            }
            Token::Match { len, dist } => {
                flags.write_bit(true);
                lens.push(len as u32 - MIN_MATCH as u32);
                dist_lo.push((dist & 0xFF) as u32);
                dist_hi.push((dist >> 8) as u32);
            }
        }
    }
    let flag_bytes = flags.finish();

    let mut out = Vec::new();
    out.extend_from_slice(&(raw_len as u64).to_le_bytes());
    out.extend_from_slice(&(tokens.len() as u64).to_le_bytes());
    write_section(&mut out, &flag_bytes);
    write_coded(&mut out, &literals);
    write_coded(&mut out, &lens);
    write_coded(&mut out, &dist_lo);
    write_coded(&mut out, &dist_hi);
    out
}

fn write_section(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Huffman-code a symbol stream; empty streams are a zero-length section.
fn write_coded(out: &mut Vec<u8>, symbols: &[u32]) {
    if symbols.is_empty() {
        out.extend_from_slice(&0u64.to_le_bytes());
        return;
    }
    let table = HuffmanTable::from_symbols(symbols);
    let tbl = table.serialize();
    let bits = table.encode(symbols);
    let mut section = Vec::with_capacity(8 + tbl.len() + bits.len());
    section.extend_from_slice(&(symbols.len() as u64).to_le_bytes());
    section.extend_from_slice(&tbl);
    section.extend_from_slice(&bits);
    write_section(out, &section);
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, CfcError> {
    if *pos + 8 > bytes.len() {
        return Err(CfcError::Truncated {
            context: "lossless header",
            needed: 8,
            available: bytes.len().saturating_sub(*pos),
        });
    }
    let v = u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().unwrap());
    *pos += 8;
    Ok(v)
}

fn read_section<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], CfcError> {
    let len = read_u64(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or(CfcError::Truncated {
            context: "lossless section",
            needed: len,
            available: bytes.len().saturating_sub(*pos),
        })?;
    let s = &bytes[*pos..end];
    *pos = end;
    Ok(s)
}

fn read_coded(bytes: &[u8], pos: &mut usize) -> Result<Vec<u32>, CfcError> {
    let section = read_section(bytes, pos)?;
    if section.is_empty() {
        return Ok(Vec::new());
    }
    if section.len() < 8 {
        return Err(CfcError::Truncated {
            context: "coded section header",
            needed: 8,
            available: section.len(),
        });
    }
    let count = u64::from_le_bytes(section[0..8].try_into().unwrap()) as usize;
    let (table, used) = HuffmanTable::try_deserialize(&section[8..])?;
    table.try_decode(&section[8 + used..], count)
}

fn decode_tokens(bytes: &[u8], max_len: usize, out: &mut Vec<u8>) -> Result<(), CfcError> {
    let mut pos = 0usize;
    let raw_len = read_u64(bytes, &mut pos)? as usize;
    if raw_len > max_len {
        return Err(CfcError::Corrupt {
            context: "lossless stream",
            detail: format!("claimed size {raw_len} exceeds budget {max_len}"),
        });
    }
    let ntokens = read_u64(bytes, &mut pos)? as usize;
    let flag_bytes = read_section(bytes, &mut pos)?;
    // one flag bit per token bounds the token count by the flag section, so
    // the loop below — and the output allocation — stay proportional to the
    // actual input size no matter what the header claims
    if ntokens > flag_bytes.len().saturating_mul(8) {
        return Err(CfcError::Corrupt {
            context: "lossless stream",
            detail: format!("{ntokens} tokens exceed {} flag bits", flag_bytes.len() * 8),
        });
    }
    if raw_len > ntokens.saturating_mul(MAX_MATCH) && !(ntokens == 0 && raw_len == 0) {
        return Err(CfcError::Corrupt {
            context: "lossless stream",
            detail: format!("claimed size {raw_len} unreachable from {ntokens} tokens"),
        });
    }
    let literals = read_coded(bytes, &mut pos)?;
    let lens = read_coded(bytes, &mut pos)?;
    let dist_lo = read_coded(bytes, &mut pos)?;
    let dist_hi = read_coded(bytes, &mut pos)?;

    let corrupt = |detail: String| CfcError::Corrupt {
        context: "LZ token stream",
        detail,
    };
    // cap the upfront allocation; genuinely large outputs grow amortized,
    // while a hostile header can't demand gigabytes before decoding starts
    out.reserve(raw_len.min(1 << 24));
    let mut flags = BitReader::new(flag_bytes);
    let (mut li, mut mi) = (0usize, 0usize);
    for _ in 0..ntokens {
        // bound checked above: ntokens flags always fit the section
        if flags.read_bit() {
            let (&l, &lo, &hi) = match (lens.get(mi), dist_lo.get(mi), dist_hi.get(mi)) {
                (Some(l), Some(lo), Some(hi)) => (l, lo, hi),
                _ => return Err(corrupt(format!("match stream exhausted at token {mi}"))),
            };
            let len = l as usize + MIN_MATCH;
            let dist = (lo | (hi << 8)) as usize;
            mi += 1;
            if dist < 1 || dist > out.len() {
                return Err(corrupt(format!("distance {dist} at offset {}", out.len())));
            }
            if out.len() + len > raw_len {
                return Err(corrupt("output overruns claimed size".into()));
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            let &b = literals
                .get(li)
                .ok_or_else(|| corrupt(format!("literal stream exhausted at token {li}")))?;
            if out.len() == raw_len {
                return Err(corrupt("output overruns claimed size".into()));
            }
            out.push(b as u8);
            li += 1;
        }
    }
    if out.len() != raw_len {
        return Err(corrupt(format!(
            "decompressed {} bytes, header claims {raw_len}",
            out.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c);
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello world");
    }

    #[test]
    fn repetitive_compresses_well() {
        let data: Vec<u8> = b"abcdefgh".iter().cycle().take(10_000).cloned().collect();
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 4,
            "ratio too low: {} / {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c), data);
    }

    #[test]
    fn long_zero_runs() {
        let mut data = vec![0u8; 50_000];
        data[100] = 7;
        data[40_000] = 9;
        let c = compress(&data);
        assert!(c.len() < 2_000);
        assert_eq!(decompress(&c), data);
    }

    #[test]
    fn incompressible_falls_back_to_stored() {
        // pseudo-random bytes
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..5_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + 9);
        assert_eq!(decompress(&c), data);
    }

    #[test]
    fn overlapping_matches() {
        // "aaaa..." forces overlapping copies (dist 1, long len)
        let data = vec![b'a'; 1000];
        let c = compress(&data);
        // a handful of tokens + fixed per-section headers
        assert!(c.len() < 220, "len {}", c.len());
        assert_eq!(decompress(&c), data);
    }

    #[test]
    fn structured_binary() {
        // alternating record-like structure, typical of Huffman output headers
        let mut data = Vec::new();
        for i in 0..3000u32 {
            data.extend_from_slice(&(i % 17).to_le_bytes());
        }
        roundtrip(&data);
        let c = compress(&data);
        assert!(c.len() < data.len() / 2);
    }

    #[test]
    fn match_at_window_edge() {
        // repeat beyond the 64K window: must still round-trip (just without
        // cross-window matches)
        let pattern: Vec<u8> = (0..=255u8).collect();
        let data: Vec<u8> = pattern.iter().cycle().take(200_000).cloned().collect();
        roundtrip(&data);
    }

    #[test]
    fn bounded_decompress_rejects_bombs() {
        // a highly repetitive buffer decompresses fine unbounded but must be
        // rejected when it exceeds the caller's budget
        let data = vec![7u8; 100_000];
        let c = compress(&data);
        assert_eq!(try_decompress_bounded(&c, 100_000).unwrap(), data);
        assert!(matches!(
            try_decompress_bounded(&c, 50_000),
            Err(CfcError::Corrupt { .. })
        ));
        // stored mode respects the budget too
        let tiny = compress(b"abc");
        assert!(try_decompress_bounded(&tiny, 2).is_err());
        assert_eq!(try_decompress_bounded(&tiny, 3).unwrap(), b"abc");
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        roundtrip(&data);
    }
}
