//! Lattice predictors.
//!
//! A [`Predictor`] maps a point's already-known neighbourhood to a predicted
//! lattice value. With dual quantization the *encoder* can evaluate
//! predictors in parallel against the full prequantized lattice; the
//! *decoder* evaluates them sequentially in row-major order against the
//! partially reconstructed lattice. A predictor is only **causal** (usable)
//! if every neighbour it touches precedes the current point in row-major
//! order — the paper's Figure 3 argument. [`CentralDiffPredictor`] is
//! intentionally non-causal and exists to demonstrate the resulting
//! encode/decode mismatch in tests and ablations.

use crate::lattice::QuantLattice;

/// A prediction model over the prequantized integer lattice.
///
/// `idx` is the current point's multi-index (length = ndim of the lattice).
/// Implementations must be deterministic and, for correct codecs, causal in
/// row-major order.
pub trait Predictor: Sync {
    /// Predicted lattice value at `idx` given the (partially) known lattice.
    fn predict(&self, lattice: &QuantLattice, idx: &[usize]) -> i64;

    /// Whether the predictor only reads row-major-preceding points.
    fn is_causal(&self) -> bool {
        true
    }

    /// Bulk encoder-side residuals: `out[t] = q[t] − predict(q, t)` for
    /// every point in row-major order, wrapping exactly like
    /// [`Predictor::predict`]-based loops. `out` is cleared first.
    ///
    /// The default walks the lattice point by point through `predict`;
    /// predictors with exploitable structure (e.g. Lorenzo) override it
    /// with row-sliced kernels that LLVM autovectorizes.
    fn residuals_into(&self, lattice: &QuantLattice, out: &mut Vec<i64>) {
        let shape = lattice.shape();
        out.clear();
        out.reserve(shape.len());
        match shape.ndim() {
            1 => {
                for i in 0..shape.dims()[0] {
                    out.push(lattice.at(i).wrapping_sub(self.predict(lattice, &[i])));
                }
            }
            2 => {
                let (rows, cols) = (shape.dims()[0], shape.dims()[1]);
                for i in 0..rows {
                    for j in 0..cols {
                        out.push(
                            lattice
                                .at(i * cols + j)
                                .wrapping_sub(self.predict(lattice, &[i, j])),
                        );
                    }
                }
            }
            3 => {
                let d = shape.dims();
                for k in 0..d[0] {
                    for i in 0..d[1] {
                        for j in 0..d[2] {
                            out.push(
                                lattice
                                    .at((k * d[1] + i) * d[2] + j)
                                    .wrapping_sub(self.predict(lattice, &[k, i, j])),
                            );
                        }
                    }
                }
            }
            _ => unreachable!("lattices are 1-3 dimensional"),
        }
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// `out[j] = cur[j] − cur[j−1]` with `cur[−1] = 0`: the 1-D Lorenzo row,
/// and the first row of every higher-dimensional Lorenzo slab.
#[inline]
fn row_res_1d(cur: &[i64], out: &mut Vec<i64>) {
    let Some(&first) = cur.first() else { return };
    out.push(first);
    out.extend(cur.windows(2).map(|w| w[1].wrapping_sub(w[0])));
}

/// 2-D Lorenzo residual row given the previous row (`prev`), with implicit
/// zero padding at `j = −1`.
#[inline]
fn row_res_2d(cur: &[i64], prev: &[i64], out: &mut Vec<i64>) {
    let Some(&first) = cur.first() else { return };
    out.push(first.wrapping_sub(prev[0]));
    out.extend((1..cur.len()).map(|j| {
        cur[j]
            .wrapping_sub(cur[j - 1])
            .wrapping_sub(prev[j])
            .wrapping_add(prev[j - 1])
    }));
}

/// 3-D Lorenzo residual row from the three neighbouring rows: `p` at
/// `(k, i−1)`, `b` at `(k−1, i)`, and `o` at `(k−1, i−1)`.
#[inline]
fn row_res_3d(c: &[i64], p: &[i64], b: &[i64], o: &[i64], out: &mut Vec<i64>) {
    let Some(&first) = c.first() else { return };
    out.push(
        first
            .wrapping_sub(p[0])
            .wrapping_sub(b[0])
            .wrapping_add(o[0]),
    );
    out.extend((1..c.len()).map(|j| {
        c[j].wrapping_sub(c[j - 1])
            .wrapping_sub(p[j])
            .wrapping_add(p[j - 1])
            .wrapping_sub(b[j])
            .wrapping_add(b[j - 1])
            .wrapping_add(o[j])
            .wrapping_sub(o[j - 1])
    }));
}

/// The classic Lorenzo predictor (1-layer), dimension-dispatching.
///
/// * 1-D: `q(i−1)`
/// * 2-D: `q(i−1,j) + q(i,j−1) − q(i−1,j−1)`
/// * 3-D: 7-term inclusion–exclusion over the preceding corner cube.
#[derive(Debug, Clone, Copy, Default)]
pub struct LorenzoPredictor;

impl Predictor for LorenzoPredictor {
    #[inline]
    fn predict(&self, lattice: &QuantLattice, idx: &[usize]) -> i64 {
        // wrapping arithmetic: corrupt streams can plant i64::MAX-scale
        // outliers in the lattice, and the decode contract is Err-not-panic;
        // encoder and decoder wrap identically, so round-trips are unaffected
        match *idx {
            [i] => lattice.get1(i as isize - 1),
            [i, j] => {
                let (i, j) = (i as isize, j as isize);
                lattice
                    .get2(i - 1, j)
                    .wrapping_add(lattice.get2(i, j - 1))
                    .wrapping_sub(lattice.get2(i - 1, j - 1))
            }
            [k, i, j] => {
                let (k, i, j) = (k as isize, i as isize, j as isize);
                lattice
                    .get3(k - 1, i, j)
                    .wrapping_add(lattice.get3(k, i - 1, j))
                    .wrapping_add(lattice.get3(k, i, j - 1))
                    .wrapping_sub(lattice.get3(k - 1, i - 1, j))
                    .wrapping_sub(lattice.get3(k - 1, i, j - 1))
                    .wrapping_sub(lattice.get3(k, i - 1, j - 1))
                    .wrapping_add(lattice.get3(k - 1, i - 1, j - 1))
            }
            _ => unreachable!("lattices are 1-3 dimensional"),
        }
    }

    /// Row-sliced bulk residuals. The boundary cases fall out of the
    /// inclusion–exclusion structure instead of needing padded copies: with
    /// zero padding, the `k = 0` plane of 3-D Lorenzo *is* 2-D Lorenzo and
    /// the `i = 0` row of 2-D Lorenzo *is* the 1-D difference, so every row
    /// reduces to one of three branch-free kernels over contiguous slices.
    fn residuals_into(&self, lattice: &QuantLattice, out: &mut Vec<i64>) {
        let shape = lattice.shape();
        let data = lattice.as_slice();
        out.clear();
        out.reserve(shape.len());
        match shape.ndim() {
            1 => row_res_1d(data, out),
            2 => {
                let cols = shape.dims()[1];
                if cols == 0 {
                    return;
                }
                for (i, cur) in data.chunks_exact(cols).enumerate() {
                    if i == 0 {
                        row_res_1d(cur, out);
                    } else {
                        row_res_2d(cur, &data[(i - 1) * cols..i * cols], out);
                    }
                }
            }
            3 => {
                let d = shape.dims();
                let (n1, n2) = (d[1], d[2]);
                if n1 == 0 || n2 == 0 {
                    return;
                }
                let row = |k: usize, i: usize| &data[(k * n1 + i) * n2..(k * n1 + i + 1) * n2];
                for k in 0..d[0] {
                    for i in 0..n1 {
                        let cur = row(k, i);
                        match (k, i) {
                            (0, 0) => row_res_1d(cur, out),
                            (0, i) => row_res_2d(cur, row(0, i - 1), out),
                            (k, 0) => row_res_2d(cur, row(k - 1, 0), out),
                            (k, i) => row_res_3d(
                                cur,
                                row(k, i - 1),
                                row(k - 1, i),
                                row(k - 1, i - 1),
                                out,
                            ),
                        }
                    }
                }
            }
            _ => unreachable!("lattices are 1-3 dimensional"),
        }
    }

    fn name(&self) -> &'static str {
        "lorenzo"
    }
}

/// Central-difference predictor: `(q(i−1) + q(i+1)) / 2` along the last axis.
///
/// **Non-causal**: it reads `q(i+1)`, which the row-major decoder has not
/// reconstructed yet. Kept to reproduce the paper's Figure 3 discussion —
/// round-tripping with this predictor demonstrably diverges.
#[derive(Debug, Clone, Copy, Default)]
pub struct CentralDiffPredictor;

impl Predictor for CentralDiffPredictor {
    #[inline]
    fn predict(&self, lattice: &QuantLattice, idx: &[usize]) -> i64 {
        match *idx {
            [i] => {
                let i = i as isize;
                lattice.get1(i - 1).wrapping_add(lattice.get1(i + 1)) / 2
            }
            [i, j] => {
                let (i, j) = (i as isize, j as isize);
                lattice.get2(i, j - 1).wrapping_add(lattice.get2(i, j + 1)) / 2
            }
            [k, i, j] => {
                let (k, i, j) = (k as isize, i as isize, j as isize);
                lattice
                    .get3(k, i, j - 1)
                    .wrapping_add(lattice.get3(k, i, j + 1))
                    / 2
            }
            _ => unreachable!(),
        }
    }

    fn is_causal(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "central-diff"
    }
}

/// SZ3-style block linear regression predictor.
///
/// The domain is tiled into `block × block(.× block)` tiles; within each tile
/// the value is predicted by an affine model `a·di + b·dj (+ c·dk) + d`
/// fitted by least squares against the prequantized values. Coefficients are
/// stored as `f32` side information (accounted in the stream). This is a
/// faithful simplification of SZ3's regression predictor; it is causal
/// because the decoder receives the coefficients up front.
#[derive(Debug, Clone)]
pub struct RegressionPredictor {
    block: usize,
    ndim: usize,
    /// Per-block coefficients: ndim slopes then intercept.
    coeffs: Vec<f32>,
    blocks: Vec<usize>, // block grid extents
}

impl RegressionPredictor {
    /// Default SZ3 block edge.
    pub const DEFAULT_BLOCK: usize = 6;

    /// Fit per-block affine models against a prequantized lattice.
    pub fn fit(lattice: &QuantLattice, block: usize) -> Self {
        assert!(block >= 2);
        let shape = lattice.shape();
        let ndim = shape.ndim();
        let dims: Vec<usize> = shape.dims().to_vec();
        let blocks: Vec<usize> = dims.iter().map(|&d| d.div_ceil(block)).collect();
        let nblocks: usize = blocks.iter().product();
        let ncoef = ndim + 1;
        let mut coeffs = vec![0.0f32; nblocks * ncoef];
        for b in 0..nblocks {
            let borigin = Self::block_origin(b, &blocks, block);
            let fitted = Self::fit_block(lattice, &borigin, block, &dims);
            coeffs[b * ncoef..(b + 1) * ncoef].copy_from_slice(&fitted);
        }
        RegressionPredictor {
            block,
            ndim,
            coeffs,
            blocks,
        }
    }

    /// Rebuild from stored coefficients (decoder side).
    pub fn from_coeffs(dims: Vec<usize>, block: usize, coeffs: Vec<f32>) -> Self {
        let ndim = dims.len();
        let blocks: Vec<usize> = dims.iter().map(|&d| d.div_ceil(block)).collect();
        let nblocks: usize = blocks.iter().product();
        assert_eq!(
            coeffs.len(),
            nblocks * (ndim + 1),
            "coefficient count mismatch"
        );
        RegressionPredictor {
            block,
            ndim,
            coeffs,
            blocks,
        }
    }

    /// The fitted coefficients (for serialization).
    pub fn coeffs(&self) -> &[f32] {
        &self.coeffs
    }

    /// Block edge length.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Side-information size in bytes.
    pub fn side_info_bytes(&self) -> usize {
        self.coeffs.len() * 4
    }

    fn block_origin(b: usize, blocks: &[usize], block: usize) -> Vec<usize> {
        let mut rem = b;
        let mut origin = vec![0usize; blocks.len()];
        for k in (0..blocks.len()).rev() {
            origin[k] = (rem % blocks[k]) * block;
            rem /= blocks[k];
        }
        origin
    }

    fn block_index(&self, idx: &[usize]) -> usize {
        let mut b = 0usize;
        for k in 0..self.ndim {
            b = b * self.blocks[k] + idx[k] / self.block;
        }
        b
    }

    /// Least-squares fit of `a·d0 + b·d1 (+ c·d2) + intercept` on one block.
    fn fit_block(
        lattice: &QuantLattice,
        origin: &[usize],
        block: usize,
        dims: &[usize],
    ) -> Vec<f32> {
        let ndim = origin.len();
        let ncoef = ndim + 1;
        // normal equations, tiny (≤4×4) system
        let mut ata = vec![0.0f64; ncoef * ncoef];
        let mut atb = vec![0.0f64; ncoef];
        let mut extent = vec![0usize; ndim];
        for k in 0..ndim {
            extent[k] = block.min(dims[k] - origin[k]);
        }
        let total: usize = extent.iter().product();
        for t in 0..total {
            // unravel t into per-axis local offsets (row-major)
            let mut rem = t;
            let mut local = [0usize; 3];
            for k in (0..ndim).rev() {
                local[k] = rem % extent[k];
                rem /= extent[k];
            }
            let mut row = [0.0f64; 4];
            for k in 0..ndim {
                row[k] = local[k] as f64;
            }
            row[ndim] = 1.0;
            let off = match ndim {
                1 => origin[0] + local[0],
                2 => (origin[0] + local[0]) * dims[1] + origin[1] + local[1],
                3 => {
                    ((origin[0] + local[0]) * dims[1] + origin[1] + local[1]) * dims[2]
                        + origin[2]
                        + local[2]
                }
                _ => unreachable!(),
            };
            let y = lattice.as_slice()[off] as f64;
            for r in 0..ncoef {
                for c in 0..ncoef {
                    ata[r * ncoef + c] += row[r] * row[c];
                }
                atb[r] += row[r] * y;
            }
        }
        Self::solve(&mut ata, &mut atb, ncoef)
    }

    /// Gaussian elimination with partial pivoting on the tiny normal system.
    fn solve(ata: &mut [f64], atb: &mut [f64], n: usize) -> Vec<f32> {
        for col in 0..n {
            // pivot
            let mut piv = col;
            for r in col + 1..n {
                if ata[r * n + col].abs() > ata[piv * n + col].abs() {
                    piv = r;
                }
            }
            if ata[piv * n + col].abs() < 1e-12 {
                continue; // singular direction (e.g. 1-wide block): slope 0
            }
            if piv != col {
                for c in 0..n {
                    ata.swap(col * n + c, piv * n + c);
                }
                atb.swap(col, piv);
            }
            let d = ata[col * n + col];
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = ata[r * n + col] / d;
                for c in 0..n {
                    ata[r * n + c] -= f * ata[col * n + c];
                }
                atb[r] -= f * atb[col];
            }
        }
        (0..n)
            .map(|k| {
                let d = ata[k * n + k];
                if d.abs() < 1e-12 {
                    0.0
                } else {
                    (atb[k] / d) as f32
                }
            })
            .collect()
    }
}

impl Predictor for RegressionPredictor {
    fn predict(&self, _lattice: &QuantLattice, idx: &[usize]) -> i64 {
        let b = self.block_index(idx);
        let ncoef = self.ndim + 1;
        let co = &self.coeffs[b * ncoef..(b + 1) * ncoef];
        let mut v = co[self.ndim] as f64;
        for k in 0..self.ndim {
            let local = (idx[k] % self.block) as f64;
            v += co[k] as f64 * local;
        }
        v.round() as i64
    }

    fn name(&self) -> &'static str {
        "regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_tensor::Shape;

    #[test]
    fn lorenzo_2d_on_linear_field_is_exact() {
        // On affine data the 2-D Lorenzo prediction is exact away from borders.
        let dims = (8usize, 8usize);
        let data: Vec<i64> = (0..dims.0 as i64 * dims.1 as i64)
            .map(|o| {
                let (i, j) = (o / dims.1 as i64, o % dims.1 as i64);
                3 * i + 2 * j + 5
            })
            .collect();
        let lat = QuantLattice::from_vec(Shape::d2(dims.0, dims.1), data);
        let p = LorenzoPredictor;
        for i in 1..dims.0 {
            for j in 1..dims.1 {
                let expect = 3 * i as i64 + 2 * j as i64 + 5;
                assert_eq!(p.predict(&lat, &[i, j]), expect);
            }
        }
    }

    #[test]
    fn lorenzo_3d_on_linear_field_is_exact() {
        let (n0, n1, n2) = (5usize, 6usize, 7usize);
        let mut data = Vec::new();
        for k in 0..n0 as i64 {
            for i in 0..n1 as i64 {
                for j in 0..n2 as i64 {
                    data.push(4 * k - 2 * i + j + 9);
                }
            }
        }
        let lat = QuantLattice::from_vec(Shape::d3(n0, n1, n2), data);
        let p = LorenzoPredictor;
        for k in 1..n0 {
            for i in 1..n1 {
                for j in 1..n2 {
                    let expect = 4 * k as i64 - 2 * i as i64 + j as i64 + 9;
                    assert_eq!(p.predict(&lat, &[k, i, j]), expect);
                }
            }
        }
    }

    #[test]
    fn lorenzo_border_uses_zero_padding() {
        let lat = QuantLattice::from_vec(Shape::d2(2, 2), vec![10, 20, 30, 40]);
        let p = LorenzoPredictor;
        assert_eq!(p.predict(&lat, &[0, 0]), 0);
        assert_eq!(p.predict(&lat, &[0, 1]), 10);
        assert_eq!(p.predict(&lat, &[1, 0]), 10);
    }

    #[test]
    fn central_is_flagged_non_causal() {
        assert!(!CentralDiffPredictor.is_causal());
        assert!(LorenzoPredictor.is_causal());
    }

    /// Per-point reference for the bulk kernels, straight off `predict`.
    fn residuals_reference(p: &dyn Predictor, lat: &QuantLattice) -> Vec<i64> {
        let shape = lat.shape();
        let mut out = Vec::with_capacity(shape.len());
        match shape.ndim() {
            1 => {
                for i in 0..shape.dims()[0] {
                    out.push(lat.at(i).wrapping_sub(p.predict(lat, &[i])));
                }
            }
            2 => {
                let (r, c) = (shape.dims()[0], shape.dims()[1]);
                for i in 0..r {
                    for j in 0..c {
                        out.push(lat.at(i * c + j).wrapping_sub(p.predict(lat, &[i, j])));
                    }
                }
            }
            3 => {
                let d = shape.dims();
                for k in 0..d[0] {
                    for i in 0..d[1] {
                        for j in 0..d[2] {
                            out.push(
                                lat.at((k * d[1] + i) * d[2] + j)
                                    .wrapping_sub(p.predict(lat, &[k, i, j])),
                            );
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
        out
    }

    fn pseudo_values(n: usize, seed: u64) -> Vec<i64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // mix of small values and i64-scale extremes to exercise wrapping
                if x.is_multiple_of(97) {
                    i64::MAX - (x % 5) as i64
                } else {
                    (x % 2048) as i64 - 1024
                }
            })
            .collect()
    }

    #[test]
    fn lorenzo_bulk_residuals_match_per_point_1d() {
        let lat = QuantLattice::from_vec(Shape::d1(257), pseudo_values(257, 0xA5));
        let mut bulk = Vec::new();
        LorenzoPredictor.residuals_into(&lat, &mut bulk);
        assert_eq!(bulk, residuals_reference(&LorenzoPredictor, &lat));
    }

    #[test]
    fn lorenzo_bulk_residuals_match_per_point_2d() {
        for (r, c) in [(1usize, 1usize), (1, 9), (9, 1), (13, 17), (32, 5)] {
            let lat = QuantLattice::from_vec(Shape::d2(r, c), pseudo_values(r * c, 0xB7));
            let mut bulk = Vec::new();
            LorenzoPredictor.residuals_into(&lat, &mut bulk);
            assert_eq!(
                bulk,
                residuals_reference(&LorenzoPredictor, &lat),
                "shape {r}x{c}"
            );
        }
    }

    #[test]
    fn lorenzo_bulk_residuals_match_per_point_3d() {
        for (a, b, c) in [
            (1usize, 1usize, 1usize),
            (1, 5, 7),
            (4, 1, 6),
            (5, 6, 1),
            (4, 5, 6),
        ] {
            let lat = QuantLattice::from_vec(Shape::d3(a, b, c), pseudo_values(a * b * c, 0xC9));
            let mut bulk = Vec::new();
            LorenzoPredictor.residuals_into(&lat, &mut bulk);
            assert_eq!(
                bulk,
                residuals_reference(&LorenzoPredictor, &lat),
                "shape {a}x{b}x{c}"
            );
        }
    }

    #[test]
    fn default_bulk_residuals_match_per_point() {
        // the trait's default implementation (exercised via a predictor
        // without an override) agrees with the explicit reference loop
        let lat = QuantLattice::from_vec(Shape::d2(12, 11), pseudo_values(132, 0xD1));
        let mut bulk = Vec::new();
        CentralDiffPredictor.residuals_into(&lat, &mut bulk);
        assert_eq!(bulk, residuals_reference(&CentralDiffPredictor, &lat));
    }

    #[test]
    fn regression_fits_affine_block_exactly() {
        let (r, c) = (12usize, 12usize);
        let data: Vec<i64> = (0..r * c)
            .map(|o| {
                let (i, j) = (o / c, o % c);
                (7 * i + 3 * j + 11) as i64
            })
            .collect();
        let lat = QuantLattice::from_vec(Shape::d2(r, c), data);
        let reg = RegressionPredictor::fit(&lat, 6);
        for i in 0..r {
            for j in 0..c {
                let expect = (7 * i + 3 * j + 11) as i64;
                let got = reg.predict(&lat, &[i, j]);
                assert!((got - expect).abs() <= 1, "at ({i},{j}): {got} vs {expect}");
            }
        }
    }

    #[test]
    fn regression_roundtrips_through_coeffs() {
        let data: Vec<i64> = (0..100).map(|v| (v * v % 37) as i64).collect();
        let lat = QuantLattice::from_vec(Shape::d2(10, 10), data);
        let reg = RegressionPredictor::fit(&lat, 4);
        let reg2 = RegressionPredictor::from_coeffs(vec![10, 10], 4, reg.coeffs().to_vec());
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(reg.predict(&lat, &[i, j]), reg2.predict(&lat, &[i, j]));
            }
        }
    }

    #[test]
    fn regression_handles_ragged_edges() {
        // 7×5 with block 4 → ragged last blocks; must not panic and must
        // produce finite predictions.
        let data: Vec<i64> = (0..35).map(|v| v as i64 * 3).collect();
        let lat = QuantLattice::from_vec(Shape::d2(7, 5), data);
        let reg = RegressionPredictor::fit(&lat, 4);
        for i in 0..7 {
            for j in 0..5 {
                let _ = reg.predict(&lat, &[i, j]);
            }
        }
    }

    #[test]
    fn regression_3d_fit() {
        let (n0, n1, n2) = (6usize, 6usize, 6usize);
        let mut data = Vec::new();
        for k in 0..n0 as i64 {
            for i in 0..n1 as i64 {
                for j in 0..n2 as i64 {
                    data.push(2 * k + 5 * i - 3 * j + 1);
                }
            }
        }
        let lat = QuantLattice::from_vec(Shape::d3(n0, n1, n2), data);
        let reg = RegressionPredictor::fit(&lat, 6);
        for k in 0..n0 {
            for i in 0..n1 {
                for j in 0..n2 {
                    let expect = 2 * k as i64 + 5 * i as i64 - 3 * j as i64 + 1;
                    let got = reg.predict(&lat, &[k, i, j]);
                    assert!(
                        (got - expect).abs() <= 1,
                        "({k},{i},{j}): {got} vs {expect}"
                    );
                }
            }
        }
    }
}
