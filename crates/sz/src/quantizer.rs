//! Postquantization: mapping prediction residuals to bounded codes.
//!
//! After prediction on the prequantized lattice, the residual
//! `delta = q − pred` is an exact integer. Residuals within `±radius` map to
//! codes `0..2·radius`; anything else becomes the *escape* code `2·radius`
//! with the true lattice value stored verbatim in an outlier section (the SZ
//! "unpredictable data" path).

/// Default quantization radius (SZ3 uses a 2^16-bin quantizer by default;
/// 512 keeps the Huffman alphabet compact and matches cuSZ's default).
pub const DEFAULT_RADIUS: u32 = 512;

/// Configuration of the residual quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizerConfig {
    /// Residuals in `(-radius, +radius]`… actually `[-radius, radius]` are
    /// representable; see [`QuantizerConfig::encode_one`].
    pub radius: u32,
}

impl Default for QuantizerConfig {
    fn default() -> Self {
        QuantizerConfig {
            radius: DEFAULT_RADIUS,
        }
    }
}

/// Result of residual encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedResiduals {
    /// One code per sample: `0..=2·radius`, where `2·radius` is the escape.
    pub codes: Vec<u32>,
    /// Lattice values for escaped samples, in scan order.
    pub outliers: Vec<i64>,
}

impl QuantizerConfig {
    /// Number of distinct codes (including the escape symbol).
    #[inline]
    pub fn alphabet(&self) -> usize {
        2 * self.radius as usize + 1
    }

    /// The escape code.
    #[inline]
    pub fn escape(&self) -> u32 {
        2 * self.radius
    }

    /// Encode one residual. Returns `(code, Some(lattice_value))` when the
    /// residual escapes the radius.
    #[inline]
    pub fn encode_one(&self, delta: i64, q: i64) -> (u32, Option<i64>) {
        let r = self.radius as i64;
        if delta > -r && delta < r {
            ((delta + r) as u32, None)
        } else {
            (self.escape(), Some(q))
        }
    }

    /// Decode one code. `Err(())` signals the escape (caller pops an outlier).
    #[inline]
    pub fn decode_one(&self, code: u32) -> Result<i64, ()> {
        if code == self.escape() {
            Err(())
        } else {
            debug_assert!(code < self.escape());
            Ok(code as i64 - self.radius as i64)
        }
    }

    /// Classify one *untrusted* code: `Ok(Some(delta))` for in-range codes,
    /// `Ok(None)` for the escape, `Err(code)` for codes outside the
    /// alphabet (which [`QuantizerConfig::decode_one`] would silently
    /// misinterpret in release builds).
    #[inline]
    pub fn check_one(&self, code: u32) -> Result<Option<i64>, u32> {
        match code.cmp(&self.escape()) {
            std::cmp::Ordering::Less => Ok(Some(code as i64 - self.radius as i64)),
            std::cmp::Ordering::Equal => Ok(None),
            std::cmp::Ordering::Greater => Err(code),
        }
    }

    /// Encode a full residual stream given lattice values (for escapes).
    pub fn encode(&self, deltas: &[i64], lattice: &[i64]) -> EncodedResiduals {
        let mut codes = Vec::new();
        let mut outliers = Vec::new();
        self.encode_into(deltas, lattice, &mut codes, &mut outliers);
        EncodedResiduals { codes, outliers }
    }

    /// [`QuantizerConfig::encode`] into caller-owned buffers (cleared
    /// first), so per-block encode loops reuse steady-state capacity.
    ///
    /// The codes pass is branchless (a select per element, which LLVM
    /// vectorizes); outliers — rare by construction — are collected in a
    /// second pass only when the first saw at least one escape.
    pub fn encode_into(
        &self,
        deltas: &[i64],
        lattice: &[i64],
        codes: &mut Vec<u32>,
        outliers: &mut Vec<i64>,
    ) {
        assert_eq!(deltas.len(), lattice.len());
        codes.clear();
        outliers.clear();
        let r = self.radius as i64;
        let esc = self.escape();
        let mut escapes = 0usize;
        codes.extend(deltas.iter().map(|&d| {
            let in_range = d > -r && d < r;
            escapes += !in_range as usize;
            if in_range {
                (d + r) as u32
            } else {
                esc
            }
        }));
        if escapes > 0 {
            outliers.reserve(escapes);
            outliers.extend(
                deltas
                    .iter()
                    .zip(lattice)
                    .filter(|&(&d, _)| !(d > -r && d < r))
                    .map(|(_, &q)| q),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_residuals_roundtrip() {
        let q = QuantizerConfig { radius: 8 };
        for d in -7..=7i64 {
            let (code, out) = q.encode_one(d, 999);
            assert!(out.is_none(), "{d} should be in-range");
            assert_eq!(q.decode_one(code), Ok(d));
        }
    }

    #[test]
    fn boundary_residuals_escape() {
        let q = QuantizerConfig { radius: 8 };
        for d in [-8i64, 8, 100, -1000] {
            let (code, out) = q.encode_one(d, 42);
            assert_eq!(code, q.escape());
            assert_eq!(out, Some(42));
            assert!(q.decode_one(code).is_err());
        }
    }

    #[test]
    fn alphabet_size() {
        let q = QuantizerConfig { radius: 512 };
        assert_eq!(q.alphabet(), 1025);
        assert_eq!(q.escape(), 1024);
    }

    #[test]
    fn stream_encode_counts_outliers() {
        let q = QuantizerConfig { radius: 4 };
        let deltas = vec![0, 3, -3, 100, -100, 2];
        let lattice = vec![10, 11, 12, 13, 14, 15];
        let enc = q.encode(&deltas, &lattice);
        assert_eq!(enc.codes.len(), 6);
        assert_eq!(enc.outliers, vec![13, 14]);
        assert_eq!(enc.codes.iter().filter(|&&c| c == q.escape()).count(), 2);
    }

    #[test]
    fn default_radius_matches_constant() {
        assert_eq!(QuantizerConfig::default().radius, DEFAULT_RADIUS);
    }
}
