//! Reusable scratch buffers for steady-state block encode/decode.
//!
//! The chunked archive processes thousands of blocks per field; without
//! reuse every block pays fresh allocations for its residual codes,
//! outliers, and decompressed lossless payload — the largest per-block
//! buffers by far (each is proportional to the block's element count). A
//! worker thread owns one [`EncodeScratch`]/[`DecodeScratch`] and passes
//! it to the `*_with` codec entry points
//! ([`crate::SzCompressor::compress_with`],
//! [`crate::SzCompressor::decompress_with`]); after the first block these
//! buffers have steady-state capacity. [`EncodeScratch`] also embeds the
//! staged entropy payload and the LZSS matcher state
//! ([`crate::lossless::LzScratch`]), so the whole
//! residuals→Huffman→LZ encode chain is allocation-free at steady state;
//! only small transients remain (per-stream Huffman tables, section
//! headers).
//!
//! Both types count buffer *growths* (a capacity increase on any internal
//! buffer) so tests can assert the covered buffers really stop growing in
//! steady state.

/// Reusable buffers for the decode path: the decompressed lossless
/// payload, the residual codes, and the outlier values.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// Decompressed Huffman-table + bitstream payload (also reused for the
    /// outlier varint payload).
    pub(crate) payload: Vec<u8>,
    /// Residual quantization codes.
    pub(crate) codes: Vec<u32>,
    /// Escaped lattice values.
    pub(crate) outliers: Vec<i64>,
    /// Times any buffer had to grow its capacity.
    pub(crate) growths: usize,
}

impl DecodeScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of capacity growths across all internal buffers since
    /// construction. Stable across decodes ⇔ steady state allocates
    /// nothing new.
    pub fn growths(&self) -> usize {
        self.growths
    }

    /// Record capacity changes against a pre-operation snapshot.
    pub(crate) fn track(&mut self, before: (usize, usize, usize)) {
        let (p, c, o) = before;
        self.growths += usize::from(self.payload.capacity() > p)
            + usize::from(self.codes.capacity() > c)
            + usize::from(self.outliers.capacity() > o);
    }

    /// Capacity snapshot for [`DecodeScratch::track`].
    pub(crate) fn caps(&self) -> (usize, usize, usize) {
        (
            self.payload.capacity(),
            self.codes.capacity(),
            self.outliers.capacity(),
        )
    }
}

/// Reusable buffers for the encode path: prediction residuals, their
/// quantized codes, the escaped outlier values, the staged entropy
/// payload, and the LZ matcher state.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    /// Per-sample prediction residuals.
    pub(crate) deltas: Vec<i64>,
    /// Residual quantization codes.
    pub(crate) codes: Vec<u32>,
    /// Escaped lattice values.
    pub(crate) outliers: Vec<i64>,
    /// Staged pre-lossless payload (Huffman table + bits, or outlier
    /// varints).
    pub(crate) payload: Vec<u8>,
    /// LZSS hash chains, token list, and stream staging.
    pub(crate) lz: crate::lossless::LzScratch,
    /// Times any buffer had to grow its capacity.
    pub(crate) growths: usize,
}

impl EncodeScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of capacity growths across all internal buffers since
    /// construction.
    pub fn growths(&self) -> usize {
        self.growths
    }

    /// The encoded `(codes, outliers)` streams of the last
    /// [`crate::codec::encode_with`] call through this scratch.
    pub fn streams(&self) -> (&[u32], &[i64]) {
        (&self.codes, &self.outliers)
    }

    /// Record capacity changes against a pre-operation snapshot.
    pub(crate) fn track(&mut self, before: (usize, usize, usize, usize, usize)) {
        let (d, c, o, p, l) = before;
        self.growths += usize::from(self.deltas.capacity() > d)
            + usize::from(self.codes.capacity() > c)
            + usize::from(self.outliers.capacity() > o)
            + usize::from(self.payload.capacity() > p)
            + usize::from(self.lz.cap_sum() > l);
    }

    /// Capacity snapshot for [`EncodeScratch::track`].
    pub(crate) fn caps(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.deltas.capacity(),
            self.codes.capacity(),
            self.outliers.capacity(),
            self.payload.capacity(),
            self.lz.cap_sum(),
        )
    }
}

/// A lock-protected pool of reusable scratch values for request-driven
/// workers (e.g. the archive store serving `decode_region` from many
/// threads, where no worker owns a long-lived scratch).
///
/// [`ScratchPool::get`] hands out a pooled value — or a fresh
/// `T::default()` when the pool is empty — wrapped in a [`PooledScratch`]
/// guard that returns it to the pool on drop. Buffers therefore keep their
/// steady-state capacity across requests, with at most one pooled value
/// per concurrently active worker.
#[derive(Debug, Default)]
pub struct ScratchPool<T: Default> {
    pool: std::sync::Mutex<Vec<T>>,
    /// Cap on idle pooled values (extras are dropped on return).
    max_idle: usize,
}

impl<T: Default> ScratchPool<T> {
    /// A pool keeping at most `max_idle` idle values around.
    pub fn new(max_idle: usize) -> Self {
        ScratchPool {
            pool: std::sync::Mutex::new(Vec::new()),
            max_idle,
        }
    }

    /// Check out a scratch value (pooled if available, fresh otherwise).
    pub fn get(&self) -> PooledScratch<'_, T> {
        let item = self
            .pool
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop()
            .unwrap_or_default();
        PooledScratch {
            pool: self,
            item: Some(item),
        }
    }

    /// Idle values currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.pool.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    fn put_back(&self, item: T) {
        let mut pool = self.pool.lock().unwrap_or_else(|p| p.into_inner());
        if pool.len() < self.max_idle {
            pool.push(item);
        }
    }
}

/// RAII checkout from a [`ScratchPool`]; derefs to the pooled value and
/// returns it to the pool when dropped.
#[derive(Debug)]
pub struct PooledScratch<'a, T: Default> {
    pool: &'a ScratchPool<T>,
    item: Option<T>,
}

impl<T: Default> std::ops::Deref for PooledScratch<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.item.as_ref().expect("live until drop")
    }
}

impl<T: Default> std::ops::DerefMut for PooledScratch<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("live until drop")
    }
}

impl<T: Default> Drop for PooledScratch<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            self.pool.put_back(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_tracking_counts_capacity_increases() {
        let mut s = DecodeScratch::new();
        let before = s.caps();
        s.codes.reserve(1000);
        s.track(before);
        assert_eq!(s.growths(), 1);
        // no growth when capacity suffices
        let before = s.caps();
        s.codes.clear();
        s.codes.resize(500, 0);
        s.track(before);
        assert_eq!(s.growths(), 1);
    }

    #[test]
    fn encode_scratch_tracks_all_buffers() {
        let mut s = EncodeScratch::new();
        let before = s.caps();
        s.deltas.reserve(10);
        s.codes.reserve(10);
        s.outliers.reserve(10);
        s.payload.reserve(10);
        s.track(before);
        assert_eq!(s.growths(), 4);
        // LZ scratch growth counts as one more
        let before = s.caps();
        let _ = crate::lossless::compress_with(&vec![7u8; 4096], &mut s.lz);
        s.track(before);
        assert_eq!(s.growths(), 5);
    }

    #[test]
    fn pool_reuses_returned_scratch() {
        let pool: ScratchPool<DecodeScratch> = ScratchPool::new(4);
        {
            let mut s = pool.get();
            s.codes.reserve(1 << 12);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1);
        // the same grown buffer comes back out
        let s = pool.get();
        assert!(s.codes.capacity() >= 1 << 12);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_caps_idle_values() {
        let pool: ScratchPool<DecodeScratch> = ScratchPool::new(1);
        let a = pool.get();
        let b = pool.get();
        drop(a);
        drop(b); // second return exceeds max_idle and is dropped
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pool_hands_out_distinct_values_concurrently() {
        let pool: ScratchPool<EncodeScratch> = ScratchPool::new(8);
        let a = pool.get();
        let b = pool.get();
        // distinct allocations, not aliases
        assert_ne!(
            std::ptr::from_ref::<EncodeScratch>(&*a),
            std::ptr::from_ref::<EncodeScratch>(&*b),
        );
    }
}
