//! Reusable scratch buffers for steady-state block encode/decode.
//!
//! The chunked archive processes thousands of blocks per field; without
//! reuse every block pays fresh allocations for its residual codes,
//! outliers, and decompressed lossless payload — the largest per-block
//! buffers by far (each is proportional to the block's element count). A
//! worker thread owns one [`EncodeScratch`]/[`DecodeScratch`] and passes
//! it to the `*_with` codec entry points
//! ([`crate::SzCompressor::compress_with`],
//! [`crate::SzCompressor::decompress_with`]); after the first block these
//! buffers have steady-state capacity. Smaller transient allocations
//! remain (container section copies, per-stream Huffman tables, the LZ
//! token-section vectors) — the scratch covers the element-proportional
//! buffers, not every allocation on the path.
//!
//! Both types count buffer *growths* (a capacity increase on any internal
//! buffer) so tests can assert the covered buffers really stop growing in
//! steady state.

/// Reusable buffers for the decode path: the decompressed lossless
/// payload, the residual codes, and the outlier values.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// Decompressed Huffman-table + bitstream payload (also reused for the
    /// outlier varint payload).
    pub(crate) payload: Vec<u8>,
    /// Residual quantization codes.
    pub(crate) codes: Vec<u32>,
    /// Escaped lattice values.
    pub(crate) outliers: Vec<i64>,
    /// Times any buffer had to grow its capacity.
    pub(crate) growths: usize,
}

impl DecodeScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of capacity growths across all internal buffers since
    /// construction. Stable across decodes ⇔ steady state allocates
    /// nothing new.
    pub fn growths(&self) -> usize {
        self.growths
    }

    /// Record capacity changes against a pre-operation snapshot.
    pub(crate) fn track(&mut self, before: (usize, usize, usize)) {
        let (p, c, o) = before;
        self.growths += usize::from(self.payload.capacity() > p)
            + usize::from(self.codes.capacity() > c)
            + usize::from(self.outliers.capacity() > o);
    }

    /// Capacity snapshot for [`DecodeScratch::track`].
    pub(crate) fn caps(&self) -> (usize, usize, usize) {
        (
            self.payload.capacity(),
            self.codes.capacity(),
            self.outliers.capacity(),
        )
    }
}

/// Reusable buffers for the encode path: prediction residuals, their
/// quantized codes, and the escaped outlier values.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    /// Per-sample prediction residuals.
    pub(crate) deltas: Vec<i64>,
    /// Residual quantization codes.
    pub(crate) codes: Vec<u32>,
    /// Escaped lattice values.
    pub(crate) outliers: Vec<i64>,
    /// Times any buffer had to grow its capacity.
    pub(crate) growths: usize,
}

impl EncodeScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of capacity growths across all internal buffers since
    /// construction.
    pub fn growths(&self) -> usize {
        self.growths
    }

    /// The encoded `(codes, outliers)` streams of the last
    /// [`crate::codec::encode_with`] call through this scratch.
    pub fn streams(&self) -> (&[u32], &[i64]) {
        (&self.codes, &self.outliers)
    }

    /// Record capacity changes against a pre-operation snapshot.
    pub(crate) fn track(&mut self, before: (usize, usize, usize)) {
        let (d, c, o) = before;
        self.growths += usize::from(self.deltas.capacity() > d)
            + usize::from(self.codes.capacity() > c)
            + usize::from(self.outliers.capacity() > o);
    }

    /// Capacity snapshot for [`EncodeScratch::track`].
    pub(crate) fn caps(&self) -> (usize, usize, usize) {
        (
            self.deltas.capacity(),
            self.codes.capacity(),
            self.outliers.capacity(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_tracking_counts_capacity_increases() {
        let mut s = DecodeScratch::new();
        let before = s.caps();
        s.codes.reserve(1000);
        s.track(before);
        assert_eq!(s.growths(), 1);
        // no growth when capacity suffices
        let before = s.caps();
        s.codes.clear();
        s.codes.resize(500, 0);
        s.track(before);
        assert_eq!(s.growths(), 1);
    }

    #[test]
    fn encode_scratch_tracks_all_buffers() {
        let mut s = EncodeScratch::new();
        let before = s.caps();
        s.deltas.reserve(10);
        s.codes.reserve(10);
        s.outliers.reserve(10);
        s.track(before);
        assert_eq!(s.growths(), 3);
    }
}
