//! Compressed stream container format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "CFSZ" | version u16 | ndim u8 | dims u64×ndim | eb f64 | radius u32
//! | n_sections u16 | { tag u8, len u64, bytes } ×n_sections
//! ```
//!
//! Section tags identify the payloads (Huffman-coded residuals, outliers,
//! predictor side info, embedded CFNN model, …). Unknown tags are preserved
//! so future extensions stay readable.
//!
//! Parsing is fully fallible: [`Container::try_from_bytes`] validates magic,
//! version, dimensionality, extents, and every section length against the
//! buffer bounds, returning [`CfcError`] on any violation — it never panics
//! or reads out of bounds on attacker-controlled input.

use bytes::BufMut;
use cfc_tensor::Shape;

use crate::error::{CfcError, Reader};

/// Stream magic bytes.
pub const MAGIC: &[u8; 4] = b"CFSZ";
/// Container version.
pub const VERSION: u16 = 1;

/// Upper bound on `shape.len()` accepted from untrusted headers.
///
/// Decode-side allocations scale with the *declared* element count (codes,
/// lattice, reconstruction), so this cap — together with the per-section
/// lossless budgets in `compressor` — bounds what a hostile stream can
/// demand. 2^28 samples = 1 GiB raw f32, comfortably above the paper's
/// largest field (98×1200×1200 ≈ 1.4×10^8 samples). Callers accepting
/// streams from the network can pre-screen further by parsing the header
/// with [`Container::try_from_bytes`] and checking `shape.len()` before
/// decoding.
pub const MAX_ELEMENTS: usize = 1 << 28;

/// Section tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SectionTag {
    /// Huffman table + coded residual codes (LZSS-wrapped).
    Residuals = 1,
    /// Outlier lattice values.
    Outliers = 2,
    /// Predictor side information (e.g. regression coefficients).
    PredictorSideInfo = 3,
    /// Serialized CFNN weights (cross-field pipeline only).
    Model = 4,
    /// Hybrid-model weights (cross-field pipeline only).
    HybridWeights = 5,
    /// Cross-field metadata (anchor names, normalizers).
    CrossFieldMeta = 6,
}

impl SectionTag {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            SectionTag::Residuals => "residuals",
            SectionTag::Outliers => "outliers",
            SectionTag::PredictorSideInfo => "predictor side info",
            SectionTag::Model => "model",
            SectionTag::HybridWeights => "hybrid weights",
            SectionTag::CrossFieldMeta => "cross-field metadata",
        }
    }
}

/// In-memory form of a compressed stream.
#[derive(Debug, Clone)]
pub struct Container {
    /// Shape of the encoded field.
    pub shape: Shape,
    /// Absolute error bound used.
    pub eb: f64,
    /// Quantizer radius.
    pub radius: u32,
    /// Tagged payload sections.
    pub sections: Vec<(u8, Vec<u8>)>,
}

impl Container {
    /// New empty container.
    pub fn new(shape: Shape, eb: f64, radius: u32) -> Self {
        Container {
            shape,
            eb,
            radius,
            sections: Vec::new(),
        }
    }

    /// Append a section.
    pub fn push(&mut self, tag: SectionTag, bytes: Vec<u8>) {
        self.sections.push((tag as u8, bytes));
    }

    /// Fetch a section body by tag.
    pub fn section(&self, tag: SectionTag) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag as u8)
            .map(|(_, b)| b.as_slice())
    }

    /// Fetch a section body, or a [`CfcError::MissingSection`] when absent.
    pub fn require_section(&self, tag: SectionTag) -> Result<&[u8], CfcError> {
        self.section(tag).ok_or(CfcError::MissingSection {
            tag: tag as u8,
            name: tag.name(),
        })
    }

    /// Total serialized size in bytes.
    pub fn serialized_len(&self) -> usize {
        let header = 4 + 2 + 1 + 8 * self.shape.ndim() + 8 + 4 + 2;
        header
            + self
                .sections
                .iter()
                .map(|(_, b)| 1 + 8 + b.len())
                .sum::<usize>()
    }

    /// Serialize to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        out.put_slice(MAGIC);
        out.put_u16_le(VERSION);
        out.put_u8(self.shape.ndim() as u8);
        for &d in self.shape.dims() {
            out.put_u64_le(d as u64);
        }
        out.put_f64_le(self.eb);
        out.put_u32_le(self.radius);
        out.put_u16_le(self.sections.len() as u16);
        for (tag, bytes) in &self.sections {
            out.put_u8(*tag);
            out.put_u64_le(bytes.len() as u64);
            out.put_slice(bytes);
        }
        out
    }

    /// Parse and validate from untrusted bytes.
    ///
    /// Checks, in order: magic, version, `ndim ∈ 1..=3`, non-zero extents
    /// whose product stays under [`MAX_ELEMENTS`], a finite positive error
    /// bound, a non-zero radius, and that every section length fits inside
    /// the remaining buffer. Any violation returns `Err` — this function is
    /// panic-free for arbitrary input.
    pub fn try_from_bytes(buf: &[u8]) -> Result<Self, CfcError> {
        let mut r = Reader::new(buf);
        let magic = r.bytes(4, "magic")?;
        if magic != MAGIC {
            return Err(CfcError::BadMagic {
                expected: *MAGIC,
                found: magic.to_vec(),
            });
        }
        let version = r.u16("version")?;
        if version != VERSION {
            return Err(CfcError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let ndim = r.u8("ndim")? as usize;
        if !(1..=3).contains(&ndim) {
            return Err(CfcError::InvalidHeader(format!(
                "ndim {ndim} outside 1..=3"
            )));
        }
        let mut dims = Vec::with_capacity(ndim);
        let mut n_elems: usize = 1;
        for axis in 0..ndim {
            let d = r.u64("dims")?;
            let d = usize::try_from(d)
                .ok()
                .filter(|&d| d > 0)
                .ok_or_else(|| CfcError::InvalidHeader(format!("axis {axis} extent {d}")))?;
            n_elems = n_elems
                .checked_mul(d)
                .filter(|&n| n <= MAX_ELEMENTS)
                .ok_or_else(|| {
                    CfcError::InvalidHeader(format!("element count exceeds {MAX_ELEMENTS}"))
                })?;
            dims.push(d);
        }
        let shape = Shape::from_slice(&dims);
        let eb = r.f64("error bound")?;
        if !(eb.is_finite() && eb > 0.0) {
            return Err(CfcError::InvalidHeader(format!(
                "error bound {eb} not positive/finite"
            )));
        }
        let radius = r.u32("radius")?;
        if radius == 0 || radius > (1 << 30) {
            return Err(CfcError::InvalidHeader(format!(
                "quantizer radius {radius}"
            )));
        }
        let nsec = r.u16("section count")? as usize;
        // every section costs at least 9 header bytes, so an nsec that can't
        // fit is rejected before any allocation scales with it
        if nsec * 9 > r.remaining() {
            return Err(CfcError::Truncated {
                context: "section table",
                needed: nsec * 9,
                available: r.remaining(),
            });
        }
        let mut sections = Vec::with_capacity(nsec);
        for _ in 0..nsec {
            let tag = r.u8("section tag")?;
            let len = r.len_u64("section length")?;
            let bytes = r.bytes(len, "section body")?.to_vec();
            sections.push((tag, bytes));
        }
        Ok(Container {
            shape,
            eb,
            radius,
            sections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty() {
        let c = Container::new(Shape::d2(10, 20), 1e-3, 512);
        let c2 = Container::try_from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(c2.shape, c.shape);
        assert_eq!(c2.eb, c.eb);
        assert_eq!(c2.radius, c.radius);
        assert!(c2.sections.is_empty());
    }

    #[test]
    fn roundtrip_sections() {
        let mut c = Container::new(Shape::d3(4, 5, 6), 5e-4, 256);
        c.push(SectionTag::Residuals, vec![1, 2, 3]);
        c.push(SectionTag::Outliers, vec![]);
        c.push(SectionTag::Model, vec![9; 1000]);
        let c2 = Container::try_from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(c2.section(SectionTag::Residuals), Some(&[1u8, 2, 3][..]));
        assert_eq!(c2.section(SectionTag::Outliers), Some(&[][..]));
        assert_eq!(c2.section(SectionTag::Model).unwrap().len(), 1000);
        assert!(c2.section(SectionTag::HybridWeights).is_none());
    }

    #[test]
    fn serialized_len_is_exact() {
        let mut c = Container::new(Shape::d1(100), 1e-2, 512);
        c.push(SectionTag::Residuals, vec![0; 37]);
        assert_eq!(c.serialized_len(), c.to_bytes().len());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            Container::try_from_bytes(b"NOPE\x01\x00"),
            Err(CfcError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = Container::new(Shape::d1(4), 1e-3, 512).to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Container::try_from_bytes(&bytes),
            Err(CfcError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn require_section_errors_when_absent() {
        let c = Container::new(Shape::d1(1), 1.0, 1);
        assert!(matches!(
            c.require_section(SectionTag::Model),
            Err(CfcError::MissingSection { tag: 4, .. })
        ));
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        let mut c = Container::new(Shape::d3(3, 4, 5), 1e-3, 512);
        c.push(SectionTag::Residuals, vec![7; 100]);
        let bytes = c.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Container::try_from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must fail"
            );
        }
        assert!(Container::try_from_bytes(&bytes).is_ok());
    }

    #[test]
    fn hostile_headers_rejected() {
        // zero extent
        let mut c = Container::new(Shape::d2(4, 4), 1e-3, 512).to_bytes();
        c[7..15].copy_from_slice(&0u64.to_le_bytes());
        assert!(Container::try_from_bytes(&c).is_err());
        // absurd element count (overflow-safe)
        let mut c = Container::new(Shape::d3(2, 2, 2), 1e-3, 512).to_bytes();
        c[7..15].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Container::try_from_bytes(&c).is_err());
        // non-finite error bound
        let mut c = Container::new(Shape::d1(4), 1e-3, 512).to_bytes();
        let eb_off = 4 + 2 + 1 + 8;
        c[eb_off..eb_off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(Container::try_from_bytes(&c).is_err());
        // section length pointing past the buffer
        let mut c = Container::new(Shape::d1(4), 1e-3, 512);
        c.push(SectionTag::Residuals, vec![1, 2, 3]);
        let mut bytes = c.to_bytes();
        let len_off = bytes.len() - 3 - 8;
        bytes[len_off..len_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Container::try_from_bytes(&bytes).is_err());
    }
}
