//! Compressed stream container format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "CFSZ" | version u16 | ndim u8 | dims u64×ndim | eb f64 | radius u32
//! | n_sections u16 | { tag u8, len u64, bytes } ×n_sections
//! ```
//!
//! Section tags identify the payloads (Huffman-coded residuals, outliers,
//! predictor side info, embedded CFNN model, …). Unknown tags are preserved
//! so future extensions stay readable.

use bytes::{Buf, BufMut};
use cfc_tensor::Shape;

/// Stream magic bytes.
pub const MAGIC: &[u8; 4] = b"CFSZ";
/// Container version.
pub const VERSION: u16 = 1;

/// Section tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SectionTag {
    /// Huffman table + coded residual codes (LZSS-wrapped).
    Residuals = 1,
    /// Outlier lattice values.
    Outliers = 2,
    /// Predictor side information (e.g. regression coefficients).
    PredictorSideInfo = 3,
    /// Serialized CFNN weights (cross-field pipeline only).
    Model = 4,
    /// Hybrid-model weights (cross-field pipeline only).
    HybridWeights = 5,
    /// Cross-field metadata (anchor names, normalizers).
    CrossFieldMeta = 6,
}

impl SectionTag {
    fn from_u8(v: u8) -> Option<SectionTag> {
        match v {
            1 => Some(SectionTag::Residuals),
            2 => Some(SectionTag::Outliers),
            3 => Some(SectionTag::PredictorSideInfo),
            4 => Some(SectionTag::Model),
            5 => Some(SectionTag::HybridWeights),
            6 => Some(SectionTag::CrossFieldMeta),
            _ => None,
        }
    }
}

/// In-memory form of a compressed stream.
#[derive(Debug, Clone)]
pub struct Container {
    /// Shape of the encoded field.
    pub shape: Shape,
    /// Absolute error bound used.
    pub eb: f64,
    /// Quantizer radius.
    pub radius: u32,
    /// Tagged payload sections.
    pub sections: Vec<(u8, Vec<u8>)>,
}

impl Container {
    /// New empty container.
    pub fn new(shape: Shape, eb: f64, radius: u32) -> Self {
        Container { shape, eb, radius, sections: Vec::new() }
    }

    /// Append a section.
    pub fn push(&mut self, tag: SectionTag, bytes: Vec<u8>) {
        self.sections.push((tag as u8, bytes));
    }

    /// Fetch a section body by tag.
    pub fn section(&self, tag: SectionTag) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag as u8)
            .map(|(_, b)| b.as_slice())
    }

    /// Fetch a section body, panicking with context when absent.
    pub fn expect_section(&self, tag: SectionTag) -> &[u8] {
        self.section(tag)
            .unwrap_or_else(|| panic!("stream missing section {tag:?}"))
    }

    /// Total serialized size in bytes.
    pub fn serialized_len(&self) -> usize {
        let header = 4 + 2 + 1 + 8 * self.shape.ndim() + 8 + 4 + 2;
        header + self.sections.iter().map(|(_, b)| 1 + 8 + b.len()).sum::<usize>()
    }

    /// Serialize to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        out.put_slice(MAGIC);
        out.put_u16_le(VERSION);
        out.put_u8(self.shape.ndim() as u8);
        for &d in self.shape.dims() {
            out.put_u64_le(d as u64);
        }
        out.put_f64_le(self.eb);
        out.put_u32_le(self.radius);
        out.put_u16_le(self.sections.len() as u16);
        for (tag, bytes) in &self.sections {
            out.put_u8(*tag);
            out.put_u64_le(bytes.len() as u64);
            out.put_slice(bytes);
        }
        out
    }

    /// Parse from bytes.
    pub fn from_bytes(mut buf: &[u8]) -> Self {
        assert!(buf.len() >= 4 && &buf[..4] == MAGIC, "bad magic — not a CFSZ stream");
        buf.advance(4);
        let version = buf.get_u16_le();
        assert_eq!(version, VERSION, "unsupported stream version {version}");
        let ndim = buf.get_u8() as usize;
        assert!((1..=3).contains(&ndim), "invalid ndim {ndim}");
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(buf.get_u64_le() as usize);
        }
        let shape = Shape::from_slice(&dims);
        let eb = buf.get_f64_le();
        let radius = buf.get_u32_le();
        let nsec = buf.get_u16_le() as usize;
        let mut sections = Vec::with_capacity(nsec);
        for _ in 0..nsec {
            let tag = buf.get_u8();
            let len = buf.get_u64_le() as usize;
            assert!(buf.remaining() >= len, "truncated section (tag {tag})");
            let bytes = buf[..len].to_vec();
            buf.advance(len);
            // validate known tags eagerly so corruption surfaces here
            let _ = SectionTag::from_u8(tag);
            sections.push((tag, bytes));
        }
        Container { shape, eb, radius, sections }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty() {
        let c = Container::new(Shape::d2(10, 20), 1e-3, 512);
        let c2 = Container::from_bytes(&c.to_bytes());
        assert_eq!(c2.shape, c.shape);
        assert_eq!(c2.eb, c.eb);
        assert_eq!(c2.radius, c.radius);
        assert!(c2.sections.is_empty());
    }

    #[test]
    fn roundtrip_sections() {
        let mut c = Container::new(Shape::d3(4, 5, 6), 5e-4, 256);
        c.push(SectionTag::Residuals, vec![1, 2, 3]);
        c.push(SectionTag::Outliers, vec![]);
        c.push(SectionTag::Model, vec![9; 1000]);
        let c2 = Container::from_bytes(&c.to_bytes());
        assert_eq!(c2.section(SectionTag::Residuals), Some(&[1u8, 2, 3][..]));
        assert_eq!(c2.section(SectionTag::Outliers), Some(&[][..]));
        assert_eq!(c2.section(SectionTag::Model).unwrap().len(), 1000);
        assert!(c2.section(SectionTag::HybridWeights).is_none());
    }

    #[test]
    fn serialized_len_is_exact() {
        let mut c = Container::new(Shape::d1(100), 1e-2, 512);
        c.push(SectionTag::Residuals, vec![0; 37]);
        assert_eq!(c.serialized_len(), c.to_bytes().len());
    }

    #[test]
    #[should_panic(expected = "bad magic")]
    fn bad_magic_rejected() {
        let _ = Container::from_bytes(b"NOPE\x01\x00");
    }

    #[test]
    #[should_panic(expected = "missing section")]
    fn expect_section_panics_when_absent() {
        let c = Container::new(Shape::d1(1), 1.0, 1);
        let _ = c.expect_section(SectionTag::Model);
    }
}
