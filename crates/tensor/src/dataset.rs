//! Named multi-field dataset container — one simulation snapshot.
//!
//! Lives in `cfc-tensor` (rather than the data generators) because it is
//! the unit both the archive subsystem (`cfc_core::archive`) and the
//! synthetic generators (`cfc-datagen`) exchange.

use crate::field::Field;
use crate::shape::Shape;

/// A named collection of equally-shaped fields — one simulation snapshot.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    shape: Shape,
    fields: Vec<(String, Field)>,
}

impl Dataset {
    /// Create an empty dataset for fields of `shape`.
    pub fn new(name: impl Into<String>, shape: Shape) -> Self {
        Dataset {
            name: name.into(),
            shape,
            fields: Vec::new(),
        }
    }

    /// Dataset name (e.g. "SCALE").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Common shape of every field.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Add a field; its shape must match the dataset shape.
    pub fn push(&mut self, name: impl Into<String>, field: Field) {
        assert_eq!(field.shape(), self.shape, "field shape mismatch");
        let name = name.into();
        assert!(self.field(&name).is_none(), "duplicate field name {name}");
        self.fields.push((name, field));
    }

    /// Look a field up by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    /// Look a field up by name, panicking with a helpful message if missing.
    pub fn expect_field(&self, name: &str) -> &Field {
        self.field(name).unwrap_or_else(|| {
            panic!(
                "dataset {} has no field {name}; available: {:?}",
                self.name,
                self.field_names()
            )
        })
    }

    /// All field names in insertion order.
    pub fn field_names(&self) -> Vec<&str> {
        self.fields.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when no fields were added yet.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate `(name, field)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Field)> {
        self.fields.iter().map(|(n, f)| (n.as_str(), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut ds = Dataset::new("T", Shape::d2(2, 2));
        ds.push("A", Field::zeros(Shape::d2(2, 2)));
        ds.push("B", Field::full(Shape::d2(2, 2), 1.0));
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.field_names(), vec!["A", "B"]);
        assert!(ds.field("A").is_some());
        assert!(ds.field("C").is_none());
        assert_eq!(ds.expect_field("B").as_slice()[0], 1.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_shape_rejected() {
        let mut ds = Dataset::new("T", Shape::d2(2, 2));
        ds.push("A", Field::zeros(Shape::d2(3, 3)));
    }

    #[test]
    #[should_panic]
    fn duplicate_name_rejected() {
        let mut ds = Dataset::new("T", Shape::d2(2, 2));
        ds.push("A", Field::zeros(Shape::d2(2, 2)));
        ds.push("A", Field::zeros(Shape::d2(2, 2)));
    }
}
