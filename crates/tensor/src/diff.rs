//! First-order finite differences along field axes.
//!
//! The cross-field predictor never learns raw values: it learns the
//! *first-order backward difference* of the target field from the backward
//! differences of anchor fields (paper §III-B). Backward differences are the
//! causal choice — reconstructing `f(i,j) = f(i-1,j) + dx(i,j)` only touches
//! already-decoded samples, so the cross-field predictor composes with the
//! Lorenzo decoder order (paper Figure 3). Central differences are provided
//! too, purely so the dependency conflict the paper describes can be
//! demonstrated in tests and ablations.

use crate::field::Field;
use crate::shape::Axis;
use rayon::prelude::*;

/// `d[i] = v[i] − v[i−1]` along `axis`; the first sample along the axis keeps
/// difference 0 (so the original field is recoverable via a prefix sum given
/// the same boundary convention).
pub fn backward_diff(field: &Field, axis: Axis) -> Field {
    diff_impl(field, axis, DiffKind::Backward)
}

/// `d[i] = v[i+1] − v[i]` along `axis`; the last sample keeps difference 0.
pub fn forward_diff(field: &Field, axis: Axis) -> Field {
    diff_impl(field, axis, DiffKind::Forward)
}

/// `d[i] = (v[i+1] − v[i−1]) / 2` along `axis`; boundary samples fall back to
/// one-sided differences.
pub fn central_diff(field: &Field, axis: Axis) -> Field {
    diff_impl(field, axis, DiffKind::Central)
}

/// Backward differences along every axis of the field, in axis order.
pub fn backward_diff_all(field: &Field) -> Vec<Field> {
    Axis::first(field.shape().ndim())
        .iter()
        .map(|&ax| backward_diff(field, ax))
        .collect()
}

/// Reconstruct a field from its backward differences along `axis` given the
/// hyperplane of starting values (the samples at index 0 along `axis`,
/// flattened in row-major order of the remaining axes).
pub fn integrate_backward(diff: &Field, axis: Axis, start: &Field) -> Field {
    let shape = diff.shape();
    assert_eq!(
        start.shape(),
        shape.slice_shape(axis),
        "start hyperplane has wrong shape"
    );
    let mut out = Field::zeros(shape);
    let strides = shape.strides();
    let stride = strides[axis.index()];
    let n = shape.dim(axis);
    let lanes = lane_starts(shape, axis);
    let d = diff.as_slice();
    let s = start.as_slice();
    let o = out.as_mut_slice();
    for (lane, &base) in lanes.iter().enumerate() {
        let mut acc = s[lane];
        o[base] = acc;
        for i in 1..n {
            acc += d[base + i * stride];
            o[base + i * stride] = acc;
        }
    }
    out
}

#[derive(Clone, Copy)]
enum DiffKind {
    Backward,
    Forward,
    Central,
}

/// Linear offsets of the first element of every 1-D lane along `axis`.
fn lane_starts(shape: crate::shape::Shape, axis: Axis) -> Vec<usize> {
    let nd = shape.ndim();
    assert!(axis.index() < nd, "axis out of range");
    let strides = shape.strides();
    let mut starts = Vec::with_capacity(shape.len() / shape.dim(axis));
    // Iterate the complementary axes.
    let mut other: Vec<(usize, usize)> = Vec::new(); // (dim, stride)
    for k in 0..nd {
        if k != axis.index() {
            other.push((shape.dims()[k], strides[k]));
        }
    }
    match other.len() {
        0 => starts.push(0),
        1 => {
            for a in 0..other[0].0 {
                starts.push(a * other[0].1);
            }
        }
        2 => {
            for a in 0..other[0].0 {
                for b in 0..other[1].0 {
                    starts.push(a * other[0].1 + b * other[1].1);
                }
            }
        }
        _ => unreachable!(),
    }
    starts
}

fn diff_impl(field: &Field, axis: Axis, kind: DiffKind) -> Field {
    let shape = field.shape();
    let stride = shape.strides()[axis.index()];
    let n = shape.dim(axis);
    let v = field.as_slice();
    let mut out = Field::zeros(shape);
    let lanes = lane_starts(shape, axis);
    // Each lane is independent; parallelize over lanes through raw chunks of
    // the output indexed via the precomputed starts.
    let results: Vec<(usize, Vec<f32>)> = lanes
        .par_iter()
        .map(|&base| {
            let mut lane = vec![0.0f32; n];
            match kind {
                DiffKind::Backward => {
                    for i in 1..n {
                        lane[i] = v[base + i * stride] - v[base + (i - 1) * stride];
                    }
                }
                DiffKind::Forward => {
                    for i in 0..n.saturating_sub(1) {
                        lane[i] = v[base + (i + 1) * stride] - v[base + i * stride];
                    }
                }
                DiffKind::Central => {
                    if n == 1 {
                        // single-sample lane: difference stays 0
                    } else {
                        lane[0] = v[base + stride] - v[base];
                        for i in 1..n - 1 {
                            lane[i] =
                                0.5 * (v[base + (i + 1) * stride] - v[base + (i - 1) * stride]);
                        }
                        lane[n - 1] = v[base + (n - 1) * stride] - v[base + (n - 2) * stride];
                    }
                }
            }
            (base, lane)
        })
        .collect();
    let o = out.as_mut_slice();
    for (base, lane) in results {
        for (i, val) in lane.into_iter().enumerate() {
            o[base + i * stride] = val;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn backward_diff_1d() {
        let f = Field::from_vec(Shape::d1(4), vec![1.0, 3.0, 6.0, 10.0]);
        let d = backward_diff(&f, Axis::X);
        assert_eq!(d.as_slice(), &[0.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn forward_diff_1d() {
        let f = Field::from_vec(Shape::d1(4), vec![1.0, 3.0, 6.0, 10.0]);
        let d = forward_diff(&f, Axis::X);
        assert_eq!(d.as_slice(), &[2.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn central_diff_1d() {
        let f = Field::from_vec(Shape::d1(4), vec![1.0, 3.0, 6.0, 10.0]);
        let d = central_diff(&f, Axis::X);
        assert_eq!(d.as_slice(), &[2.0, 2.5, 3.5, 4.0]);
    }

    #[test]
    fn backward_diff_2d_both_axes() {
        let f = Field::from_vec(Shape::d2(2, 3), vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0]);
        let dx = backward_diff(&f, Axis::X);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 0.0, 7.0, 14.0, 28.0]);
        let dy = backward_diff(&f, Axis::Y);
        assert_eq!(dy.as_slice(), &[0.0, 1.0, 2.0, 0.0, 8.0, 16.0]);
    }

    #[test]
    fn integrate_inverts_backward_diff() {
        let f = Field::from_fn(Shape::d3(3, 4, 5), |idx| {
            (idx[0] * 31 + idx[1] * 7 + idx[2]) as f32 * 0.25 + 1.0
        });
        for &ax in Axis::first(3) {
            let d = backward_diff(&f, ax);
            let start = f.slice(ax, 0);
            let rec = integrate_backward(&d, ax, &start);
            for (a, b) in rec.as_slice().iter().zip(f.as_slice()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b} along {ax:?}");
            }
        }
    }

    #[test]
    fn diff_of_constant_field_is_zero() {
        let f = Field::full(Shape::d2(5, 5), 3.25);
        for &ax in Axis::first(2) {
            assert!(backward_diff(&f, ax).as_slice().iter().all(|&v| v == 0.0));
            assert!(central_diff(&f, ax).as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn backward_diff_all_returns_ndim_fields() {
        let f = Field::zeros(Shape::d3(2, 2, 2));
        assert_eq!(backward_diff_all(&f).len(), 3);
        let f2 = Field::zeros(Shape::d2(2, 2));
        assert_eq!(backward_diff_all(&f2).len(), 2);
    }

    #[test]
    fn central_diff_on_linear_ramp_is_exact_slope() {
        let f = Field::from_fn(Shape::d1(9), |idx| 2.0 * idx[0] as f32);
        let d = central_diff(&f, Axis::X);
        assert!(d.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }
}
