//! Dense owned scientific field.

use crate::region::Region;
use crate::shape::{Axis, Shape};

/// A dense, row-major array of `f32` samples with an attached [`Shape`].
///
/// `Field` is the unit of compression in this workspace: one variable of one
/// snapshot (e.g. the `Wf` wind-speed field of the Hurricane dataset).
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    shape: Shape,
    data: Vec<f32>,
}

impl Field {
    /// A zero-filled field of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        Field {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// A constant-filled field.
    pub fn full(shape: Shape, value: f32) -> Self {
        Field {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Wrap an existing buffer. `data.len()` must equal `shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Field { shape, data }
    }

    /// Build a field by evaluating `f` at every multi-index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for off in 0..shape.len() {
            let idx = shape.unravel(off);
            data.push(f(&idx[..shape.ndim()]));
        }
        Field { shape, data }
    }

    /// The field's shape.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the field holds no samples (impossible by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw samples (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw samples (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the field, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Sample at a multi-index.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Overwrite the sample at a multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// Extract the 2-D (or 1-D) slice with index `pos` along `axis`.
    ///
    /// This mirrors the paper's visualizations (e.g. "the 49th slice along
    /// the first dimension of the U field").
    pub fn slice(&self, axis: Axis, pos: usize) -> Field {
        let nd = self.shape.ndim();
        assert!(axis.index() < nd, "axis out of range for {}-D field", nd);
        assert!(pos < self.shape.dim(axis), "slice index out of bounds");
        let out_shape = self.shape.slice_shape(axis);
        let mut out = Vec::with_capacity(out_shape.len());
        match nd {
            1 => out.push(self.data[pos]),
            2 => {
                let (r, c) = (self.shape.dims()[0], self.shape.dims()[1]);
                match axis {
                    Axis::X => out.extend_from_slice(&self.data[pos * c..(pos + 1) * c]),
                    Axis::Y => {
                        for i in 0..r {
                            out.push(self.data[i * c + pos]);
                        }
                    }
                    Axis::Z => unreachable!(),
                }
            }
            3 => {
                let d = self.shape.dims();
                let (n0, n1, n2) = (d[0], d[1], d[2]);
                match axis {
                    Axis::X => {
                        out.extend_from_slice(&self.data[pos * n1 * n2..(pos + 1) * n1 * n2])
                    }
                    Axis::Y => {
                        for k in 0..n0 {
                            let base = k * n1 * n2 + pos * n2;
                            out.extend_from_slice(&self.data[base..base + n2]);
                        }
                    }
                    Axis::Z => {
                        for k in 0..n0 {
                            for i in 0..n1 {
                                out.push(self.data[k * n1 * n2 + i * n2 + pos]);
                            }
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
        Field::from_vec(out_shape, out)
    }

    /// Extract the contiguous slab `[r0, r1)` along axis 0 (the slowest
    /// axis). Because fields are row-major this is a single memcpy; it is
    /// the chunking primitive of the blocked archive container.
    pub fn slab(&self, r0: usize, r1: usize) -> Field {
        let dims = self.shape.dims();
        assert!(r0 < r1 && r1 <= dims[0], "slab [{r0}, {r1}) out of bounds");
        let slab_len: usize = dims[1..].iter().product::<usize>().max(1);
        let out_dims: Vec<usize> = std::iter::once(r1 - r0)
            .chain(dims[1..].iter().copied())
            .collect();
        Field::from_vec(
            Shape::from_slice(&out_dims),
            self.data[r0 * slab_len..r1 * slab_len].to_vec(),
        )
    }

    /// Concatenate same-trailing-shape parts along axis 0 (inverse of
    /// repeated [`Field::slab`] extraction over a partition).
    pub fn concat_axis0(parts: &[Field]) -> Field {
        let refs: Vec<&Field> = parts.iter().collect();
        Self::concat_axis0_refs(&refs)
    }

    /// [`Field::concat_axis0`] over borrowed parts — lets callers stitch
    /// shared blocks (e.g. `Arc<Field>` cache entries) without cloning
    /// them into an owned slice first.
    pub fn concat_axis0_refs(parts: &[&Field]) -> Field {
        assert!(!parts.is_empty(), "nothing to concatenate");
        let first = parts[0].shape();
        let trailing: &[usize] = &first.dims()[1..];
        let mut rows = 0usize;
        let mut total = 0usize;
        for p in parts {
            assert_eq!(
                &p.shape().dims()[1..],
                trailing,
                "trailing shape mismatch in concat_axis0"
            );
            rows += p.shape().dims()[0];
            total += p.len();
        }
        let mut data = Vec::with_capacity(total);
        for p in parts {
            data.extend_from_slice(p.as_slice());
        }
        let out_dims: Vec<usize> = std::iter::once(rows)
            .chain(trailing.iter().copied())
            .collect();
        Field::from_vec(Shape::from_slice(&out_dims), data)
    }

    /// Copy out an axis-aligned [`Region`] (must fit this field's shape).
    pub fn crop(&self, region: &Region) -> Field {
        region
            .validate(self.shape)
            .unwrap_or_else(|e| panic!("invalid region for {}: {e}", self.shape));
        let out_shape = region.shape();
        let mut out = Vec::with_capacity(out_shape.len());
        match self.shape.ndim() {
            1 => out.extend_from_slice(&self.data[region.start(0)..region.end(0)]),
            2 => {
                let cols = self.shape.dims()[1];
                for i in region.start(0)..region.end(0) {
                    out.extend_from_slice(
                        &self.data[i * cols + region.start(1)..i * cols + region.end(1)],
                    );
                }
            }
            3 => {
                let d = self.shape.dims();
                let (n1, n2) = (d[1], d[2]);
                for k in region.start(0)..region.end(0) {
                    for i in region.start(1)..region.end(1) {
                        let base = (k * n1 + i) * n2;
                        out.extend_from_slice(
                            &self.data[base + region.start(2)..base + region.end(2)],
                        );
                    }
                }
            }
            _ => unreachable!(),
        }
        Field::from_vec(out_shape, out)
    }

    /// Copy a rectangular window `[r0..r0+h) × [c0..c0+w)` out of a 2-D field.
    pub fn window2d(&self, r0: usize, c0: usize, h: usize, w: usize) -> Field {
        assert_eq!(self.shape.ndim(), 2, "window2d requires a 2-D field");
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        assert!(r0 + h <= rows && c0 + w <= cols, "window out of bounds");
        let mut out = Vec::with_capacity(h * w);
        for i in r0..r0 + h {
            out.extend_from_slice(&self.data[i * cols + c0..i * cols + c0 + w]);
        }
        Field::from_vec(Shape::d2(h, w), out)
    }

    /// Element-wise map into a new field.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Field {
        Field {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise binary combination with another same-shaped field.
    pub fn zip_map(&self, other: &Field, f: impl Fn(f32, f32) -> f32) -> Field {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip_map");
        Field {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(shape: Shape) -> Field {
        Field::from_vec(shape, (0..shape.len()).map(|v| v as f32).collect())
    }

    #[test]
    fn from_fn_matches_indexing() {
        let f = Field::from_fn(Shape::d2(3, 4), |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(f.get(&[2, 3]), 23.0);
        assert_eq!(f.get(&[0, 0]), 0.0);
    }

    #[test]
    fn slice_axis0_of_3d_is_contiguous_block() {
        let f = iota(Shape::d3(3, 2, 4));
        let s = f.slice(Axis::X, 1);
        assert_eq!(s.shape(), Shape::d2(2, 4));
        assert_eq!(
            s.as_slice(),
            &(8..16).map(|v| v as f32).collect::<Vec<_>>()[..]
        );
    }

    #[test]
    fn slice_axis1_of_3d_gathers_rows() {
        let f = iota(Shape::d3(2, 3, 2));
        let s = f.slice(Axis::Y, 2);
        assert_eq!(s.shape(), Shape::d2(2, 2));
        assert_eq!(s.as_slice(), &[4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn slice_axis2_of_3d_gathers_columns() {
        let f = iota(Shape::d3(2, 2, 3));
        let s = f.slice(Axis::Z, 1);
        assert_eq!(s.shape(), Shape::d2(2, 2));
        assert_eq!(s.as_slice(), &[1.0, 4.0, 7.0, 10.0]);
    }

    #[test]
    fn slice_of_2d_field() {
        let f = iota(Shape::d2(3, 4));
        assert_eq!(f.slice(Axis::X, 2).as_slice(), &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(f.slice(Axis::Y, 1).as_slice(), &[1.0, 5.0, 9.0]);
    }

    #[test]
    fn window_extracts_block() {
        let f = iota(Shape::d2(4, 4));
        let w = f.window2d(1, 2, 2, 2);
        assert_eq!(w.as_slice(), &[6.0, 7.0, 10.0, 11.0]);
    }

    #[test]
    fn zip_map_adds() {
        let a = iota(Shape::d1(4));
        let b = Field::full(Shape::d1(4), 2.0);
        assert_eq!(
            a.zip_map(&b, |x, y| x + y).as_slice(),
            &[2.0, 3.0, 4.0, 5.0]
        );
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_wrong_len() {
        let _ = Field::from_vec(Shape::d2(2, 2), vec![0.0; 3]);
    }

    #[test]
    fn slab_extracts_contiguous_rows() {
        let f = iota(Shape::d3(4, 2, 3));
        let s = f.slab(1, 3);
        assert_eq!(s.shape(), Shape::d3(2, 2, 3));
        assert_eq!(
            s.as_slice(),
            &(6..18).map(|v| v as f32).collect::<Vec<_>>()[..]
        );
        let f2 = iota(Shape::d1(5));
        assert_eq!(f2.slab(2, 4).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn concat_inverts_slab_partition() {
        let f = iota(Shape::d2(7, 3));
        let parts = vec![f.slab(0, 2), f.slab(2, 5), f.slab(5, 7)];
        assert_eq!(Field::concat_axis0(&parts), f);
        let refs: Vec<&Field> = parts.iter().collect();
        assert_eq!(Field::concat_axis0_refs(&refs), f);
    }

    #[test]
    fn crop_matches_manual_indexing() {
        let f = iota(Shape::d3(4, 5, 6));
        let r = Region::d3(1, 3, 2, 4, 0, 6);
        let c = f.crop(&r);
        assert_eq!(c.shape(), Shape::d3(2, 2, 6));
        for k in 0..2 {
            for i in 0..2 {
                for j in 0..6 {
                    assert_eq!(c.get(&[k, i, j]), f.get(&[k + 1, i + 2, j]));
                }
            }
        }
        // full-region crop is the identity
        assert_eq!(f.crop(&Region::full(f.shape())), f);
    }

    #[test]
    #[should_panic]
    fn crop_rejects_out_of_bounds() {
        let f = iota(Shape::d2(3, 3));
        let _ = f.crop(&Region::d2(0, 4, 0, 3));
    }
}
