//! `cfc-tensor` — the n-dimensional field substrate used throughout the
//! cross-field compression workspace.
//!
//! Scientific datasets in this project are collections of named *fields*:
//! dense 1/2/3-dimensional arrays of `f32` samples. This crate provides
//!
//! * [`Shape`] — dimension bookkeeping with row-major strides,
//! * [`Field`] — an owned dense array with slicing and windowing,
//! * [`diff`] — first-order backward/forward/central differences (the raw
//!   material of the cross-field predictor),
//! * [`stats`] — range/moment statistics and normalization helpers,
//! * [`patch`] — 2-D patch extraction used to build CNN training sets.
//!
//! Everything is deliberately concrete (`f32`, at most 3 axes): the paper's
//! datasets are 2-D and 3-D single-precision fields, and keeping the core
//! types monomorphic keeps the hot compression loops transparent to the
//! optimizer.

pub mod dataset;
pub mod diff;
pub mod field;
pub mod patch;
pub mod region;
pub mod shape;
pub mod stats;

pub use dataset::Dataset;
pub use field::Field;
pub use patch::{Patch, PatchSampler};
pub use region::Region;
pub use shape::{Axis, Shape};
pub use stats::{FieldStats, Normalizer};

/// Maximum number of axes supported by [`Shape`] / [`Field`].
pub const MAX_DIMS: usize = 3;
