//! 2-D patch extraction for CNN training sets.
//!
//! CFNN training samples random co-located patches from anchor difference
//! fields (input channels) and the target difference fields (output
//! channels). This module provides deterministic, seedable sampling of patch
//! origins plus the gather into channel-major buffers the `cfc-nn` trainer
//! consumes.

use crate::field::Field;

/// One multi-channel training patch: `channels × h × w`, channel-major.
#[derive(Debug, Clone)]
pub struct Patch {
    /// Channel-major samples (`channels * h * w` values).
    pub data: Vec<f32>,
    /// Number of channels.
    pub channels: usize,
    /// Patch height.
    pub h: usize,
    /// Patch width.
    pub w: usize,
    /// Row origin within the source field.
    pub row: usize,
    /// Column origin within the source field.
    pub col: usize,
}

/// Deterministic sampler of co-located patches from stacked 2-D fields.
///
/// All source fields must share one shape; each becomes one channel of every
/// emitted [`Patch`]. Origins are drawn from a simple xorshift stream so
/// training sets are reproducible across runs without dragging a full RNG
/// dependency into the substrate crate.
pub struct PatchSampler {
    rows: usize,
    cols: usize,
    patch: usize,
    state: u64,
}

impl PatchSampler {
    /// Create a sampler for `rows × cols` fields emitting `patch × patch`
    /// windows, seeded deterministically.
    pub fn new(rows: usize, cols: usize, patch: usize, seed: u64) -> Self {
        assert!(
            patch > 0 && patch <= rows && patch <= cols,
            "patch size {patch} does not fit in {rows}x{cols}"
        );
        PatchSampler {
            rows,
            cols,
            patch,
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* — adequate for origin shuffling, fully deterministic.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next patch origin `(row, col)`.
    pub fn next_origin(&mut self) -> (usize, usize) {
        let r_span = (self.rows - self.patch + 1) as u64;
        let c_span = (self.cols - self.patch + 1) as u64;
        let r = (self.next_u64() % r_span) as usize;
        let c = (self.next_u64() % c_span) as usize;
        (r, c)
    }

    /// Gather a patch at `(row, col)` from `channels` (each a 2-D field of
    /// the sampler's shape).
    pub fn gather(&self, channels: &[&Field], row: usize, col: usize) -> Patch {
        assert!(!channels.is_empty(), "at least one channel required");
        let p = self.patch;
        let mut data = Vec::with_capacity(channels.len() * p * p);
        for ch in channels {
            let shape = ch.shape();
            assert_eq!(
                shape.dims(),
                &[self.rows, self.cols],
                "channel shape mismatch"
            );
            let src = ch.as_slice();
            for i in 0..p {
                let base = (row + i) * self.cols + col;
                data.extend_from_slice(&src[base..base + p]);
            }
        }
        Patch {
            data,
            channels: channels.len(),
            h: p,
            w: p,
            row,
            col,
        }
    }

    /// Sample `count` random co-located patches.
    pub fn sample(&mut self, channels: &[&Field], count: usize) -> Vec<Patch> {
        (0..count)
            .map(|_| {
                let (r, c) = self.next_origin();
                self.gather(channels, r, c)
            })
            .collect()
    }

    /// All patch origins of a regular non-overlapping tiling (last tile along
    /// each axis is shifted inward so the whole field is covered).
    pub fn tiling(&self) -> Vec<(usize, usize)> {
        let p = self.patch;
        let mut rows: Vec<usize> = (0..self.rows.saturating_sub(p - 1)).step_by(p).collect();
        if *rows.last().unwrap_or(&0) + p < self.rows {
            rows.push(self.rows - p);
        }
        let mut cols: Vec<usize> = (0..self.cols.saturating_sub(p - 1)).step_by(p).collect();
        if *cols.last().unwrap_or(&0) + p < self.cols {
            cols.push(self.cols - p);
        }
        let mut out = Vec::with_capacity(rows.len() * cols.len());
        for &r in &rows {
            for &c in &cols {
                out.push((r, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn ramp(rows: usize, cols: usize) -> Field {
        Field::from_fn(Shape::d2(rows, cols), |idx| (idx[0] * cols + idx[1]) as f32)
    }

    #[test]
    fn gather_extracts_expected_block() {
        let f = ramp(6, 6);
        let s = PatchSampler::new(6, 6, 2, 1);
        let p = s.gather(&[&f], 1, 2);
        assert_eq!(p.data, vec![8.0, 9.0, 14.0, 15.0]);
        assert_eq!((p.channels, p.h, p.w), (1, 2, 2));
    }

    #[test]
    fn gather_stacks_channels() {
        let a = ramp(4, 4);
        let b = a.map(|v| v * 10.0);
        let s = PatchSampler::new(4, 4, 2, 1);
        let p = s.gather(&[&a, &b], 0, 0);
        assert_eq!(p.data, vec![0.0, 1.0, 4.0, 5.0, 0.0, 10.0, 40.0, 50.0]);
    }

    #[test]
    fn origins_stay_in_bounds_and_are_deterministic() {
        let mut s1 = PatchSampler::new(10, 12, 4, 42);
        let mut s2 = PatchSampler::new(10, 12, 4, 42);
        for _ in 0..200 {
            let (r, c) = s1.next_origin();
            assert!(r + 4 <= 10 && c + 4 <= 12);
            assert_eq!((r, c), s2.next_origin());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = PatchSampler::new(50, 50, 8, 1);
        let mut b = PatchSampler::new(50, 50, 8, 2);
        let oa: Vec<_> = (0..16).map(|_| a.next_origin()).collect();
        let ob: Vec<_> = (0..16).map(|_| b.next_origin()).collect();
        assert_ne!(oa, ob);
    }

    #[test]
    fn tiling_covers_field() {
        let s = PatchSampler::new(10, 7, 4, 0);
        let tiles = s.tiling();
        let mut covered = [false; 70];
        for (r, c) in tiles {
            assert!(r + 4 <= 10 && c + 4 <= 7);
            for i in r..r + 4 {
                for j in c..c + 4 {
                    covered[i * 7 + j] = true;
                }
            }
        }
        assert!(covered.iter().all(|&v| v));
    }

    #[test]
    fn sample_count() {
        let f = ramp(8, 8);
        let mut s = PatchSampler::new(8, 8, 3, 9);
        assert_eq!(s.sample(&[&f], 7).len(), 7);
    }

    #[test]
    #[should_panic]
    fn oversized_patch_panics() {
        let _ = PatchSampler::new(4, 4, 5, 0);
    }
}
