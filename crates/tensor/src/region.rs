//! Axis-aligned sub-regions of a field — the random-access unit of the
//! chunked archive (`cfc_core::archive`'s `decode_region`).

use crate::shape::Shape;
use crate::MAX_DIMS;

/// A half-open axis-aligned box `[start, end)` over a field's index space.
///
/// Constructed per dimensionality ([`Region::d1`] / [`Region::d2`] /
/// [`Region::d3`]) or from ranges ([`Region::from_ranges`]); validated
/// against a concrete [`Shape`] with [`Region::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    start: [usize; MAX_DIMS],
    end: [usize; MAX_DIMS],
    ndim: usize,
}

impl Region {
    /// 1-D region `[s0, e0)`.
    pub fn d1(s0: usize, e0: usize) -> Self {
        Self::from_ranges(&[(s0, e0)])
    }

    /// 2-D region `[s0, e0) × [s1, e1)`.
    pub fn d2(s0: usize, e0: usize, s1: usize, e1: usize) -> Self {
        Self::from_ranges(&[(s0, e0), (s1, e1)])
    }

    /// 3-D region `[s0, e0) × [s1, e1) × [s2, e2)`.
    pub fn d3(s0: usize, e0: usize, s1: usize, e1: usize, s2: usize, e2: usize) -> Self {
        Self::from_ranges(&[(s0, e0), (s1, e1), (s2, e2)])
    }

    /// Build from `(start, end)` pairs, one per axis (1–3 axes, each
    /// non-empty). Panics on malformed input — use [`Region::validate`] to
    /// check against a shape fallibly.
    pub fn from_ranges(ranges: &[(usize, usize)]) -> Self {
        assert!(
            (1..=MAX_DIMS).contains(&ranges.len()),
            "regions have 1-{MAX_DIMS} axes"
        );
        let mut start = [0usize; MAX_DIMS];
        let mut end = [1usize; MAX_DIMS];
        for (k, &(s, e)) in ranges.iter().enumerate() {
            assert!(s < e, "axis {k} range [{s}, {e}) is empty");
            start[k] = s;
            end[k] = e;
        }
        Region {
            start,
            end,
            ndim: ranges.len(),
        }
    }

    /// The whole index space of `shape`.
    pub fn full(shape: Shape) -> Self {
        let ranges: Vec<(usize, usize)> = shape.dims().iter().map(|&d| (0, d)).collect();
        Self::from_ranges(&ranges)
    }

    /// Number of axes.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Start index on `axis`.
    #[inline]
    pub fn start(&self, axis: usize) -> usize {
        self.start[axis]
    }

    /// One-past-the-end index on `axis`.
    #[inline]
    pub fn end(&self, axis: usize) -> usize {
        self.end[axis]
    }

    /// Extent along `axis`.
    #[inline]
    pub fn extent(&self, axis: usize) -> usize {
        self.end[axis] - self.start[axis]
    }

    /// Shape of the extracted region.
    pub fn shape(&self) -> Shape {
        let dims: Vec<usize> = (0..self.ndim).map(|k| self.extent(k)).collect();
        Shape::from_slice(&dims)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        (0..self.ndim).map(|k| self.extent(k)).product()
    }

    /// True when the region selects no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Indices of the first and last axis-0 blocks a chunked container
    /// must decode to cover this region, for blocks of `chunk_slabs` rows
    /// each (`chunk_slabs > 0`). Both ends are inclusive.
    pub fn block_cover(&self, chunk_slabs: usize) -> (usize, usize) {
        assert!(chunk_slabs > 0, "block_cover needs a positive chunk size");
        (self.start[0] / chunk_slabs, (self.end[0] - 1) / chunk_slabs)
    }

    /// The same region re-anchored to a slab that starts at axis-0 row
    /// `base` (subtracted from the axis-0 range; other axes unchanged) —
    /// the crop window to apply after stitching the covering blocks.
    pub fn rebase_axis0(&self, base: usize) -> Region {
        assert!(base <= self.start[0], "base {base} past region start");
        let mut out = *self;
        out.start[0] -= base;
        out.end[0] -= base;
        out
    }

    /// Check the region fits inside `shape`; `Err` carries a description of
    /// the first violation (dimensionality or an out-of-bounds axis).
    pub fn validate(&self, shape: Shape) -> Result<(), String> {
        if self.ndim != shape.ndim() {
            return Err(format!(
                "region has {} axes, field has {}",
                self.ndim,
                shape.ndim()
            ));
        }
        for (k, &d) in shape.dims().iter().enumerate() {
            if self.end[k] > d {
                return Err(format!(
                    "axis {k} range [{}, {}) exceeds extent {d}",
                    self.start[k], self.end[k]
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = (0..self.ndim)
            .map(|k| format!("{}..{}", self.start[k], self.end[k]))
            .collect();
        write!(f, "[{}]", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_shape_and_len() {
        let r = Region::d3(1, 3, 0, 4, 2, 5);
        assert_eq!(r.shape(), Shape::d3(2, 4, 3));
        assert_eq!(r.len(), 24);
        assert_eq!(r.to_string(), "[1..3, 0..4, 2..5]");
    }

    #[test]
    fn full_covers_shape() {
        let s = Shape::d2(7, 9);
        let r = Region::full(s);
        assert_eq!(r.shape(), s);
        assert!(r.validate(s).is_ok());
    }

    #[test]
    fn validate_rejects_mismatches() {
        let r = Region::d2(0, 4, 0, 4);
        assert!(r.validate(Shape::d3(4, 4, 4)).is_err());
        assert!(r.validate(Shape::d2(3, 4)).is_err());
        assert!(r.validate(Shape::d2(4, 4)).is_ok());
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let _ = Region::d1(3, 3);
    }

    #[test]
    fn block_cover_spans_touched_blocks() {
        let r = Region::d2(5, 19, 3, 20);
        assert_eq!(r.block_cover(6), (0, 3));
        assert_eq!(r.block_cover(5), (1, 3));
        // single-row region touches exactly one block
        assert_eq!(Region::d2(7, 8, 0, 4).block_cover(8), (0, 0));
        // block boundary: end is exclusive, so row 8 starts block 1
        assert_eq!(Region::d2(0, 8, 0, 4).block_cover(8), (0, 0));
        assert_eq!(Region::d2(8, 9, 0, 4).block_cover(8), (1, 1));
    }

    #[test]
    fn rebase_axis0_shifts_only_axis0() {
        let r = Region::d3(10, 14, 2, 5, 1, 3);
        let b = r.rebase_axis0(8);
        assert_eq!(b, Region::d3(2, 6, 2, 5, 1, 3));
        assert_eq!(r.rebase_axis0(0), r);
    }

    #[test]
    #[should_panic]
    fn rebase_past_start_panics() {
        let _ = Region::d1(3, 5).rebase_axis0(4);
    }
}
