//! Shape and index arithmetic for row-major fields of up to three axes.

use crate::MAX_DIMS;

/// Identifies one axis of a field.
///
/// Axis 0 is the slowest-varying (outermost) dimension in memory. For the
/// 3-D datasets in the paper this is the vertical / level axis, matching the
/// `98x1200x1200` convention of SDRBench (levels × lat × lon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Outermost axis (k / level for 3-D, row for 2-D).
    X = 0,
    /// Middle axis (i / latitude for 3-D, column for 2-D).
    Y = 1,
    /// Innermost axis (j / longitude, 3-D only).
    Z = 2,
}

impl Axis {
    /// All axes in index order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Numeric index of the axis.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The first `n` axes, for an `n`-dimensional shape.
    pub fn first(n: usize) -> &'static [Axis] {
        &Self::ALL[..n]
    }
}

/// A row-major shape of 1–3 dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_DIMS],
    ndim: usize,
}

impl Shape {
    /// A 1-D shape of length `n`.
    pub fn d1(n: usize) -> Self {
        assert!(n > 0, "shape axes must be non-zero");
        Shape {
            dims: [n, 1, 1],
            ndim: 1,
        }
    }

    /// A 2-D shape of `rows × cols`.
    pub fn d2(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "shape axes must be non-zero");
        Shape {
            dims: [rows, cols, 1],
            ndim: 2,
        }
    }

    /// A 3-D shape of `depth × rows × cols`.
    pub fn d3(depth: usize, rows: usize, cols: usize) -> Self {
        assert!(
            depth > 0 && rows > 0 && cols > 0,
            "shape axes must be non-zero"
        );
        Shape {
            dims: [depth, rows, cols],
            ndim: 3,
        }
    }

    /// Build from a slice of 1–3 extents.
    pub fn from_slice(dims: &[usize]) -> Self {
        match dims {
            [a] => Shape::d1(*a),
            [a, b] => Shape::d2(*a, *b),
            [a, b, c] => Shape::d3(*a, *b, *c),
            _ => panic!("shapes of {} dims are unsupported", dims.len()),
        }
    }

    /// Number of axes (1, 2, or 3).
    #[inline]
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Extent along `axis` (1 for axes beyond `ndim`).
    #[inline]
    pub fn dim(&self, axis: Axis) -> usize {
        self.dims[axis.index()]
    }

    /// The extents of the used axes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.ndim]
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.dims[..self.ndim].iter().product()
    }

    /// True when the shape holds zero elements (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides (in elements) for each used axis.
    #[inline]
    pub fn strides(&self) -> [usize; MAX_DIMS] {
        let mut s = [1usize; MAX_DIMS];
        for i in (0..self.ndim.saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.dims[i + 1];
        }
        s
    }

    /// Linear offset of the multi-index `idx` (must have `ndim` entries).
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.ndim);
        let s = self.strides();
        let mut off = 0usize;
        for (k, &i) in idx.iter().enumerate() {
            debug_assert!(i < self.dims[k], "index {i} out of bounds on axis {k}");
            off += i * s[k];
        }
        off
    }

    /// Inverse of [`Shape::offset`]: multi-index of a linear offset.
    #[inline]
    pub fn unravel(&self, mut offset: usize) -> [usize; MAX_DIMS] {
        debug_assert!(offset < self.len());
        let s = self.strides();
        let mut idx = [0usize; MAX_DIMS];
        for k in 0..self.ndim {
            idx[k] = offset / s[k];
            offset %= s[k];
        }
        idx
    }

    /// Shape of one slice taken perpendicular to `axis`.
    pub fn slice_shape(&self, axis: Axis) -> Shape {
        assert!(axis.index() < self.ndim, "axis out of range");
        let mut rem = Vec::with_capacity(self.ndim - 1);
        for (k, &d) in self.dims().iter().enumerate() {
            if k != axis.index() {
                rem.push(d);
            }
        }
        if rem.is_empty() {
            Shape::d1(1)
        } else {
            Shape::from_slice(&rem)
        }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let strs: Vec<String> = self.dims().iter().map(|d| d.to_string()).collect();
        write!(f, "{}", strs.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::d3(4, 5, 6);
        assert_eq!(s.strides(), [30, 6, 1]);
        let s2 = Shape::d2(7, 9);
        assert_eq!(s2.strides()[..2], [9, 1]);
    }

    #[test]
    fn offset_roundtrips_with_unravel() {
        let s = Shape::d3(3, 4, 5);
        for off in 0..s.len() {
            let idx = s.unravel(off);
            assert_eq!(s.offset(&idx[..3]), off);
        }
    }

    #[test]
    fn len_matches_product() {
        assert_eq!(Shape::d1(17).len(), 17);
        assert_eq!(Shape::d2(3, 9).len(), 27);
        assert_eq!(Shape::d3(2, 3, 4).len(), 24);
    }

    #[test]
    fn slice_shape_removes_axis() {
        let s = Shape::d3(2, 3, 4);
        assert_eq!(s.slice_shape(Axis::X), Shape::d2(3, 4));
        assert_eq!(s.slice_shape(Axis::Y), Shape::d2(2, 4));
        assert_eq!(s.slice_shape(Axis::Z), Shape::d2(2, 3));
        let s2 = Shape::d2(5, 6);
        assert_eq!(s2.slice_shape(Axis::X), Shape::d1(6));
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::d3(98, 1200, 1200).to_string(), "98x1200x1200");
        assert_eq!(Shape::d2(1800, 3600).to_string(), "1800x3600");
    }

    #[test]
    #[should_panic]
    fn zero_extent_panics() {
        let _ = Shape::d2(0, 4);
    }
}
