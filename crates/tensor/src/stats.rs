//! Range and moment statistics plus normalization helpers.

use crate::field::Field;

/// Summary statistics of a field, computed in one pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStats {
    /// Smallest sample.
    pub min: f32,
    /// Largest sample.
    pub max: f32,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl FieldStats {
    /// Compute statistics over all samples of `field`.
    pub fn of(field: &Field) -> Self {
        Self::of_slice(field.as_slice())
    }

    /// Compute statistics over a raw sample slice.
    pub fn of_slice(data: &[f32]) -> Self {
        assert!(
            !data.is_empty(),
            "statistics of an empty slice are undefined"
        );
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for &v in data {
            min = min.min(v);
            max = max.max(v);
            sum += v as f64;
            sum_sq += (v as f64) * (v as f64);
        }
        let n = data.len() as f64;
        let mean = sum / n;
        let var = (sum_sq / n - mean * mean).max(0.0);
        FieldStats {
            min,
            max,
            mean,
            std: var.sqrt(),
        }
    }

    /// `max − min`, the value range used for relative error bounds.
    #[inline]
    pub fn range(&self) -> f32 {
        self.max - self.min
    }
}

/// An affine normalization `y = (x − shift) · scale` with its exact inverse.
///
/// The CFNN trains on normalized differences (paper §III-B: "the value range
/// of these differences is usually smaller, which helps with normalization");
/// the transform must be recorded so the decoder applies the identical
/// inverse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normalizer {
    /// Subtracted before scaling.
    pub shift: f32,
    /// Multiplied after shifting. Always finite and non-zero.
    pub scale: f32,
}

impl Normalizer {
    /// Identity transform.
    pub fn identity() -> Self {
        Normalizer {
            shift: 0.0,
            scale: 1.0,
        }
    }

    /// Map `[min, max]` onto `[0, target]`; constant fields map to 0.
    pub fn min_max(stats: &FieldStats, target: f32) -> Self {
        let range = stats.range();
        if range <= 0.0 || !range.is_finite() {
            Normalizer {
                shift: stats.min,
                scale: 1.0,
            }
        } else {
            Normalizer {
                shift: stats.min,
                scale: target / range,
            }
        }
    }

    /// Map to zero mean, unit standard deviation (constant fields map to 0).
    pub fn standard(stats: &FieldStats) -> Self {
        if stats.std <= f64::EPSILON {
            Normalizer {
                shift: stats.mean as f32,
                scale: 1.0,
            }
        } else {
            Normalizer {
                shift: stats.mean as f32,
                scale: (1.0 / stats.std) as f32,
            }
        }
    }

    /// Symmetric max-abs scaling onto roughly `[-target, target]`.
    pub fn max_abs(data: &[f32], target: f32) -> Self {
        let m = data.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
        if m <= 0.0 || !m.is_finite() {
            Normalizer::identity()
        } else {
            Normalizer {
                shift: 0.0,
                scale: target / m,
            }
        }
    }

    /// Apply the forward transform.
    #[inline]
    pub fn apply(&self, x: f32) -> f32 {
        (x - self.shift) * self.scale
    }

    /// Apply the inverse transform.
    #[inline]
    pub fn invert(&self, y: f32) -> f32 {
        y / self.scale + self.shift
    }

    /// Normalize a whole field.
    pub fn apply_field(&self, field: &Field) -> Field {
        field.map(|v| self.apply(v))
    }

    /// Denormalize a whole field.
    pub fn invert_field(&self, field: &Field) -> Field {
        field.map(|v| self.invert(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn stats_of_known_values() {
        let f = Field::from_vec(Shape::d1(4), vec![1.0, 2.0, 3.0, 4.0]);
        let s = FieldStats::of(&f);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - 1.118033988).abs() < 1e-6);
        assert_eq!(s.range(), 3.0);
    }

    #[test]
    fn min_max_normalizer_maps_range() {
        let f = Field::from_vec(Shape::d1(3), vec![-2.0, 0.0, 6.0]);
        let n = Normalizer::min_max(&FieldStats::of(&f), 300.0);
        assert!((n.apply(-2.0) - 0.0).abs() < 1e-5);
        assert!((n.apply(6.0) - 300.0).abs() < 1e-3);
        for &v in f.as_slice() {
            assert!((n.invert(n.apply(v)) - v).abs() < 1e-4);
        }
    }

    #[test]
    fn constant_field_normalizer_is_safe() {
        let f = Field::full(Shape::d1(5), 7.0);
        let n = Normalizer::min_max(&FieldStats::of(&f), 1.0);
        assert_eq!(n.apply(7.0), 0.0);
        assert_eq!(n.invert(0.0), 7.0);
        let s = Normalizer::standard(&FieldStats::of(&f));
        assert_eq!(s.apply(7.0), 0.0);
    }

    #[test]
    fn standard_normalizer_standardizes() {
        let f = Field::from_vec(Shape::d1(4), vec![2.0, 4.0, 6.0, 8.0]);
        let n = Normalizer::standard(&FieldStats::of(&f));
        let g = n.apply_field(&f);
        let s = FieldStats::of(&g);
        assert!(s.mean.abs() < 1e-6);
        assert!((s.std - 1.0).abs() < 1e-5);
    }

    #[test]
    fn max_abs_is_symmetric() {
        let n = Normalizer::max_abs(&[-4.0, 2.0, 1.0], 1.0);
        assert!((n.apply(-4.0) + 1.0).abs() < 1e-6);
        assert!((n.apply(2.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn roundtrip_field_normalization() {
        let f = Field::from_fn(Shape::d2(8, 8), |idx| (idx[0] as f32).sin() * 40.0 + 3.0);
        let n = Normalizer::min_max(&FieldStats::of(&f), 300.0);
        let rec = n.invert_field(&n.apply_field(&f));
        for (a, b) in rec.as_slice().iter().zip(f.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
    }
}
