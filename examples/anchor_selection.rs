//! Domain scenario: choosing anchor fields for a new dataset.
//!
//! The paper selects anchors by physical intuition and leaves automatic
//! selection to future work (§IV-C). This example shows the workflow a
//! practitioner would use today: score candidate anchors by (a) raw-value
//! correlation, (b) difference-activity correlation, and (c) an actual
//! small-scale compression trial, then compare the chosen combination
//! against the paper's configuration on the Hurricane dataset.
//!
//! ```sh
//! cargo run --release --example anchor_selection
//! ```

use cross_field_compression::core::config::{CfnnSpec, TrainConfig};
use cross_field_compression::core::pipeline::CrossFieldCompressor;
use cross_field_compression::core::train::train_cfnn;
use cross_field_compression::datagen::{paper_catalog, GenParams};
use cross_field_compression::metrics::pearson;
use cross_field_compression::sz::Codec;
use cross_field_compression::tensor::{diff, Axis, Field};

fn main() {
    let info = paper_catalog()
        .into_iter()
        .find(|d| d.name == "Hurricane")
        .unwrap();
    let ds = info.generate_default(GenParams::default());
    let target_name = "Wf";
    let target = ds.expect_field(target_name);
    let candidates: Vec<&str> = ds
        .field_names()
        .into_iter()
        .filter(|n| *n != target_name)
        .collect();

    println!("Scoring candidate anchors for target {target_name}:");
    println!("{:<6}{:>12}{:>16}", "field", "value r", "activity r");
    let t_act = activity(target);
    let mut scored: Vec<(&str, f64)> = Vec::new();
    for name in &candidates {
        let f = ds.expect_field(name);
        let r_val = pearson(f.as_slice(), target.as_slice()).abs();
        let r_act = pearson(activity(f).as_slice(), t_act.as_slice()).abs();
        println!("{name:<6}{r_val:>12.3}{r_act:>16.3}");
        scored.push((name, r_val.max(r_act)));
    }
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));

    // trial-compress with top-1, top-2, top-3 anchor sets
    let rel_eb = 1e-3;
    let comp = CrossFieldCompressor::new(rel_eb);
    let baseline_ratio = {
        let s = comp.baseline().compress(target).expect("baseline compress");
        s.ratio(target.len())
    };
    println!("\nbaseline (no anchors): {baseline_ratio:.2}x");
    for k in 1..=scored.len().min(3) {
        let chosen: Vec<&str> = scored[..k].iter().map(|(n, _)| *n).collect();
        let anchors: Vec<&Field> = chosen.iter().map(|n| ds.expect_field(n)).collect();
        let spec = CfnnSpec {
            in_channels: anchors.len() * 3,
            out_channels: 3,
            ..CfnnSpec::scaled_3d(anchors.len())
        };
        let mut trained = train_cfnn(&spec, &TrainConfig::default(), &anchors, target);
        let anchors_dec: Vec<Field> = anchors
            .iter()
            .map(|a| comp.roundtrip_anchor(a).expect("anchor roundtrip"))
            .collect();
        let refs: Vec<&Field> = anchors_dec.iter().collect();
        let stream = comp
            .compress(&mut trained, target, &refs)
            .expect("compress");
        println!(
            "anchors {:<18} → {:.2}x ({:+.2}% vs baseline)",
            chosen.join("+"),
            stream.ratio(target.len()),
            (stream.ratio(target.len()) / baseline_ratio - 1.0) * 100.0
        );
    }
    println!("\n(paper's hand-picked configuration for Wf is Uf+Vf+Pf — compare above)");
}

/// Difference-activity map: smoothed |∇| over the first two axes, a cheap
/// proxy for "where is this field busy".
fn activity(f: &Field) -> Field {
    let d0 = diff::backward_diff(f, Axis::X);
    let d1 = diff::backward_diff(f, Axis::Y);
    d0.zip_map(&d1, |a, b| (a * a + b * b).sqrt())
}
