//! Domain scenario: archiving a multi-field climate snapshot (the paper's
//! introduction workload — Nyx/SCALE-class simulation output where storage
//! and I/O bandwidth are the bottleneck).
//!
//! One `ArchiveWriter` call compresses *every* field of the synthetic SCALE
//! snapshot: the paper's Table 3 role plan sends RH and W through the
//! cross-field pipeline (anchor roundtrip, CFNN training, hybrid fitting
//! all happen inside the writer, fields in parallel), everything else
//! through the baseline compressor. The resulting archive is
//! self-describing: `ArchiveReader` reconstructs the whole snapshot from
//! the bytes alone — no out-of-band metadata — and every field is verified
//! against its recorded error bound.
//!
//! ```sh
//! cargo run --release --example climate_archive
//! ```

use cross_field_compression::core::archive::{ArchiveBuilder, ArchiveReader};
use cross_field_compression::core::config::paper_table3;
use cross_field_compression::datagen::{paper_catalog, GenParams};

fn main() {
    let rel_eb = 1e-3;
    let info = paper_catalog()
        .into_iter()
        .find(|d| d.name == "SCALE")
        .unwrap();
    let ds = info.generate_default(GenParams::default());
    println!(
        "SCALE snapshot {} — {} fields, {:.1} MB raw, archiving at rel eb {rel_eb:.0e}\n",
        ds.shape(),
        ds.len(),
        ds.len() as f64 * ds.shape().len() as f64 * 4.0 / 1e6
    );

    // the paper's Table 3 rows for SCALE become the field-role plan;
    // everything not named decodes independently through the baseline
    let plan: Vec<_> = paper_table3()
        .into_iter()
        .filter(|r| r.dataset == "SCALE")
        .collect();
    let writer = ArchiveBuilder::relative(rel_eb).plan_from(&plan).build();
    let (bytes, report) = writer.write_with_report(&ds).expect("archive write");

    println!("{:<8}{:>14}{:>14}{:>12}", "field", "role", "bytes", "ratio");
    let raw_per_field = ds.shape().len() * 4;
    for f in &report.fields {
        println!(
            "{:<8}{:>14}{:>14}{:>12.2}",
            f.name,
            f.role.label(),
            f.bytes,
            raw_per_field as f64 / f.bytes as f64
        );
    }
    println!(
        "\narchive: {:.2} MB → {:.2} MB  ({:.2}x, {:.1}% of original)",
        report.raw_bytes as f64 / 1e6,
        report.archive_bytes as f64 / 1e6,
        report.ratio(),
        report.archive_bytes as f64 / report.raw_bytes as f64 * 100.0
    );

    // read side: nothing but the bytes
    let reader = ArchiveReader::new(&bytes).expect("archive parse");
    let decoded = reader.decode_all().expect("archive decode");
    assert_eq!(decoded.field_names(), ds.field_names());
    for entry in reader.entries() {
        let orig = ds.expect_field(&entry.name);
        let dec = decoded.expect_field(&entry.name);
        let worst = orig
            .as_slice()
            .iter()
            .zip(dec.as_slice())
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0, f64::max);
        assert!(
            worst <= entry.eb_abs * (1.0 + 1e-9),
            "{}: worst error {worst} exceeds bound {}",
            entry.name,
            entry.eb_abs
        );
    }
    println!("✓ every field round-tripped within its recorded error bound");
}
