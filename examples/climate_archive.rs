//! Domain scenario: archiving a multi-field climate snapshot (the paper's
//! introduction workload — Nyx/SCALE-class simulation output where storage
//! and I/O bandwidth are the bottleneck).
//!
//! One `ArchiveWriter::write_to` call streams *every* field of the
//! synthetic SCALE snapshot straight into a file: the paper's Table 3 role
//! plan sends RH and W through the cross-field pipeline (anchor roundtrip,
//! CFNN training, hybrid fitting all happen inside the writer), everything
//! else through the baseline compressor — and every field is split into
//! independently decodable CRC'd blocks, encoded in parallel.
//!
//! The read side opens the file with `ArchiveReader::open`, parses only
//! the manifest, and then:
//! * `decode_all()` reconstructs the whole snapshot (all blocks, parallel);
//! * `decode_region()` serves a small window by touching only the blocks
//!   that cover it — the random-access path a data portal would use;
//! * `ArchiveStore` wraps the reader in a decoded-block LRU cache and
//!   serves the same window from multiple threads, decoding each hot
//!   block (and its anchor blocks) exactly once.
//!
//! ```sh
//! cargo run --release --example climate_archive
//! ```

use std::io::BufWriter;
use std::sync::Arc;

use cross_field_compression::core::archive::{
    ArchiveBuilder, ArchiveReader, ArchiveStore, StoreConfig,
};
use cross_field_compression::core::config::paper_table3;
use cross_field_compression::datagen::{paper_catalog, GenParams};
use cross_field_compression::tensor::Region;

fn main() {
    let rel_eb = 1e-3;
    let info = paper_catalog()
        .into_iter()
        .find(|d| d.name == "SCALE")
        .unwrap();
    let ds = info.generate_default(GenParams::default());
    println!(
        "SCALE snapshot {} — {} fields, {:.1} MB raw, archiving at rel eb {rel_eb:.0e}\n",
        ds.shape(),
        ds.len(),
        ds.len() as f64 * ds.shape().len() as f64 * 4.0 / 1e6
    );

    // the paper's Table 3 rows for SCALE become the field-role plan;
    // everything not named decodes independently through the baseline
    let plan: Vec<_> = paper_table3()
        .into_iter()
        .filter(|r| r.dataset == "SCALE")
        .collect();
    let writer = ArchiveBuilder::relative(rel_eb)
        .plan_from(&plan)
        .chunk_elements(1 << 16) // ~64Ki samples per block
        .build();

    // stream straight to disk — the sink never needs to seek
    let path = std::env::temp_dir().join("scale_snapshot.cfar");
    let file = std::fs::File::create(&path).expect("create archive file");
    let report = writer
        .write_to(&ds, BufWriter::new(file))
        .expect("archive write");

    println!(
        "{:<8}{:>14}{:>12}{:>9}{:>12}",
        "field", "role", "bytes", "blocks", "ratio"
    );
    let raw_per_field = ds.shape().len() * 4;
    for f in &report.fields {
        println!(
            "{:<8}{:>14}{:>12}{:>9}{:>12.2}",
            f.name,
            f.role.label(),
            f.bytes,
            f.n_blocks,
            f.ratio(raw_per_field / 4)
        );
    }
    println!(
        "\narchive: {:.2} MB → {:.2} MB  ({:.2}x, {:.1}% of original) at {}",
        report.raw_bytes as f64 / 1e6,
        report.archive_bytes as f64 / 1e6,
        report.ratio(),
        report.archive_bytes as f64 / report.raw_bytes as f64 * 100.0,
        path.display()
    );

    // read side: open the file, parse nothing but the manifest
    let reader =
        ArchiveReader::open(std::fs::File::open(&path).expect("open")).expect("archive parse");
    let decoded = reader.decode_all().expect("archive decode");
    assert_eq!(decoded.field_names(), ds.field_names());
    for entry in reader.entries() {
        let orig = ds.expect_field(&entry.name);
        let dec = decoded.expect_field(&entry.name);
        let worst = orig
            .as_slice()
            .iter()
            .zip(dec.as_slice())
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0, f64::max);
        assert!(
            worst <= entry.eb_abs * (1.0 + 1e-9),
            "{}: worst error {worst} exceeds bound {}",
            entry.name,
            entry.eb_abs
        );
    }
    println!("✓ every field round-tripped within its recorded error bound");

    // random access: a window of the cross-field W target, served by
    // decoding only the blocks (and anchor blocks) that cover it
    let dims = ds.shape().dims().to_vec();
    let region = match dims.len() {
        3 => Region::d3(
            dims[0] / 3,
            (dims[0] / 3 + 4).min(dims[0]),
            dims[1] / 4,
            dims[1] / 2,
            dims[2] / 4,
            dims[2] / 2,
        ),
        _ => Region::d2(dims[0] / 3, dims[0] / 3 + 40, dims[1] / 2, dims[1] / 2 + 64),
    };
    let window = reader.decode_region("W", &region).expect("region decode");
    let full = decoded.expect_field("W").crop(&region);
    assert_eq!(window, full, "random access must match the full decode");
    let w = reader.entries().iter().find(|e| e.name == "W").unwrap();
    let (b_first, b_last) = region.block_cover(w.chunk_slabs());
    println!(
        "✓ decode_region({region}) of W matches decode_all — served from {} of {} blocks",
        b_last - b_first + 1,
        w.n_blocks()
    );

    // serving layer: wrap a fresh reader in an ArchiveStore and let four
    // threads hammer the same hot window of the cross-field target — the
    // covering blocks (and their anchor blocks) decode once, every later
    // read is a cache hit on shared Arc<Field> samples
    let store = Arc::new(ArchiveStore::new(
        ArchiveReader::open(std::fs::File::open(&path).expect("open")).expect("archive parse"),
        StoreConfig::default(),
    ));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let store = Arc::clone(&store);
            let window = &window;
            s.spawn(move || {
                for _ in 0..8 {
                    let served = store.decode_region("W", &region).expect("store decode");
                    assert_eq!(&served, window, "cached serve must match");
                }
            });
        }
    });
    let stats = store.stats();
    println!(
        "✓ ArchiveStore served 32 concurrent reads with {} block decodes, \
         {} cache hits ({:.1}% hit rate, {:.1} KiB cached)",
        stats.misses,
        stats.hits,
        stats.hit_rate() * 100.0,
        stats.cached_bytes as f64 / 1024.0
    );
    std::fs::remove_file(&path).ok();
}
