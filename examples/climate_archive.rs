//! Domain scenario: archiving a multi-field climate snapshot (the paper's
//! introduction workload — Nyx/SCALE-class simulation output where storage
//! and I/O bandwidth are the bottleneck).
//!
//! Compresses *every* field of the synthetic SCALE snapshot: anchors go
//! through the baseline compressor; the designated target fields (RH, W)
//! ride the cross-field pipeline with their anchors. Prints an archive
//! manifest with per-field ratios and the end-to-end storage saving.
//!
//! ```sh
//! cargo run --release --example climate_archive
//! ```

use cross_field_compression::core::config::{paper_table3, TrainConfig};
use cross_field_compression::core::pipeline::CrossFieldCompressor;
use cross_field_compression::core::train::train_cfnn;
use cross_field_compression::datagen::{paper_catalog, GenParams};
use cross_field_compression::tensor::Field;

fn main() {
    let rel_eb = 1e-3;
    let info = paper_catalog().into_iter().find(|d| d.name == "SCALE").unwrap();
    let ds = info.generate_default(GenParams::default());
    println!(
        "SCALE snapshot {} — {} fields, {:.1} MB raw, archiving at rel eb {rel_eb:.0e}\n",
        ds.shape(),
        ds.len(),
        ds.len() as f64 * ds.shape().len() as f64 * 4.0 / 1e6
    );

    let comp = CrossFieldCompressor::new(rel_eb);
    let baseline = comp.baseline();
    let cross_rows: Vec<_> = paper_table3()
        .into_iter()
        .filter(|r| r.dataset == "SCALE")
        .collect();

    let mut total_raw = 0usize;
    let mut total_compressed = 0usize;
    println!("{:<8}{:>12}{:>14}{:>12}", "field", "method", "bytes", "ratio");
    for (name, field) in ds.iter() {
        let raw = field.len() * 4;
        total_raw += raw;
        let row = cross_rows.iter().find(|r| r.target == name);
        let (method, bytes) = match row {
            Some(row) => {
                // cross-field target: anchors are archived too, so their
                // decompressed versions are free at read time
                let anchors: Vec<&Field> =
                    row.anchors.iter().map(|a| ds.expect_field(a)).collect();
                let anchors_dec: Vec<Field> =
                    anchors.iter().map(|a| comp.roundtrip_anchor(a)).collect();
                let refs: Vec<&Field> = anchors_dec.iter().collect();
                let mut trained =
                    train_cfnn(&row.spec, &TrainConfig::default(), &anchors, field);
                let stream = comp.compress(&mut trained, field, &refs);
                ("cross-field", stream.bytes.len())
            }
            None => ("baseline", baseline.compress(field).bytes.len()),
        };
        total_compressed += bytes;
        println!("{name:<8}{method:>12}{bytes:>14}{:>12.2}", raw as f64 / bytes as f64);
    }
    println!(
        "\narchive: {:.2} MB → {:.2} MB  ({:.2}x, {:.1}% of original)",
        total_raw as f64 / 1e6,
        total_compressed as f64 / 1e6,
        total_raw as f64 / total_compressed as f64,
        total_compressed as f64 / total_raw as f64 * 100.0
    );
}
