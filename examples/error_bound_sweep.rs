//! Domain scenario: picking an error bound for post-hoc analysis.
//!
//! Scientists choose the loosest bound whose reconstruction still preserves
//! the analysis they care about. This example sweeps bounds on the CESM
//! LWCF field, reporting ratio, PSNR, SSIM, and a domain-style derived
//! quantity (global mean cloud forcing) so the trade-off is visible end to
//! end — and shows where cross-field compression shifts the frontier.
//!
//! ```sh
//! cargo run --release --example error_bound_sweep
//! ```

use cross_field_compression::core::config::{paper_table3, TrainConfig};
use cross_field_compression::core::pipeline::CrossFieldCompressor;
use cross_field_compression::core::train::train_cfnn;
use cross_field_compression::datagen::{paper_catalog, GenParams};
use cross_field_compression::metrics::{psnr, ssim_field};
use cross_field_compression::sz::Codec;
use cross_field_compression::tensor::{Field, FieldStats};

fn main() {
    let info = paper_catalog()
        .into_iter()
        .find(|d| d.name == "CESM-ATM")
        .unwrap();
    let ds = info.generate_default(GenParams::default());
    let row = paper_table3()
        .into_iter()
        .find(|r| r.target == "LWCF")
        .unwrap();
    let target = ds.expect_field("LWCF");
    let anchors: Vec<&Field> = row.anchors.iter().map(|a| ds.expect_field(a)).collect();
    let true_mean = FieldStats::of(target).mean;

    // one model serves every bound (trained on original data, §III-D2)
    let mut trained = train_cfnn(&row.spec, &TrainConfig::default(), &anchors, target);

    println!("LWCF error-bound sweep (global mean cloud forcing: {true_mean:.4} W/m²)\n");
    println!(
        "{:>9}{:>11}{:>11}{:>10}{:>9}{:>16}",
        "rel_eb", "base x", "ours x", "PSNR dB", "SSIM", "mean drift"
    );
    for rel_eb in [5e-3, 2e-3, 1e-3, 5e-4, 2e-4] {
        let comp = CrossFieldCompressor::new(rel_eb);
        let base = comp.baseline().compress(target).expect("baseline compress");
        let anchors_dec: Vec<Field> = anchors
            .iter()
            .map(|a| comp.roundtrip_anchor(a).expect("anchor roundtrip"))
            .collect();
        let refs: Vec<&Field> = anchors_dec.iter().collect();
        let stream = comp
            .compress(&mut trained, target, &refs)
            .expect("compress");
        let rec = comp.decompress(&stream.bytes, &refs).expect("decompress");
        let drift = (FieldStats::of(&rec).mean - true_mean).abs();
        println!(
            "{:>9.0e}{:>11.2}{:>11.2}{:>10.2}{:>9.4}{:>16.3e}",
            rel_eb,
            base.ratio(target.len()),
            stream.ratio(target.len()),
            psnr(target, &rec),
            ssim_field(target, &rec),
            drift
        );
    }
    println!(
        "\nReading: pick the loosest bound whose PSNR/SSIM/mean-drift is acceptable;\n\
         the 'ours' column shows the extra headroom cross-field prediction buys\n\
         at tight bounds, where archives are largest."
    );
}
