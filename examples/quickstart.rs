//! Quickstart: compress one field with the baseline SZ-style compressor and
//! with cross-field enhancement, and verify the error bound.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cross_field_compression::core::config::{CfnnSpec, TrainConfig};
use cross_field_compression::core::pipeline::CrossFieldCompressor;
use cross_field_compression::core::train::train_cfnn;
use cross_field_compression::datagen::FractalNoise;
use cross_field_compression::metrics::{psnr, ssim_field};
use cross_field_compression::tensor::{Field, Shape};

fn main() {
    // 1. Make a pair of correlated fields (in practice: two variables of one
    //    simulation snapshot). The anchor carries fine-scale structure; the
    //    target is a nonlinear function of it — locally rough (hard for a
    //    Lorenzo predictor) but cross-field predictable.
    let (rows, cols) = (384usize, 384usize);
    let shape = Shape::d2(rows, cols);
    let smooth_a = FractalNoise::new(1).with_base_freq(3.0).with_persistence(0.35);
    let smooth_t = FractalNoise::new(9).with_base_freq(2.5).with_persistence(0.3).with_octaves(3);
    let rough = FractalNoise::new(2).with_base_freq(12.0).with_persistence(0.6);
    let shared = rough.grid2(rows, cols, 0.7);
    let anchor = Field::from_vec(
        shape,
        smooth_a
            .grid2(rows, cols, 0.1)
            .iter()
            .zip(&shared)
            .map(|(&a, &b)| 4.0 * a + 9.0 * b)
            .collect(),
    );
    // target: its own large-scale structure (Lorenzo's home turf) plus the
    // anchor's fine-scale texture (CFNN's home turf)
    let target = Field::from_vec(
        shape,
        smooth_t
            .grid2(rows, cols, 0.4)
            .iter()
            .zip(&shared)
            .map(|(&a, &b)| 30.0 * a + 8.0 * b)
            .collect(),
    );

    // 2. Baseline: error-bounded SZ-style compression (Lorenzo + dual-quant).
    let rel_eb = 2e-4;
    let comp = CrossFieldCompressor::new(rel_eb);
    let baseline = comp.baseline();
    let base_stream = baseline.compress(&target);
    let base_rec = baseline.decompress(&base_stream.bytes);
    println!(
        "baseline     : {:.2}x  ({:.3} bits/value, PSNR {:.2} dB, SSIM {:.4})",
        base_stream.ratio(target.len()),
        base_stream.bit_rate(target.len()),
        psnr(&target, &base_rec),
        ssim_field(&target, &base_rec),
    );

    // 3. Cross-field: train a CFNN once (on original data — one model serves
    //    every error bound), then compress with the hybrid predictor.
    let spec = CfnnSpec::compact(1, 2);
    let mut trained = train_cfnn(&spec, &TrainConfig::default(), &[&anchor], &target);
    let anchor_dec = comp.roundtrip_anchor(&anchor); // what the decoder has
    let stream = comp.compress(&mut trained, &target, &[&anchor_dec]);
    let rec = comp.decompress(&stream.bytes, &[&anchor_dec]);
    println!(
        "cross-field  : {:.2}x  ({:.3} bits/value, PSNR {:.2} dB, SSIM {:.4}, model {} B)",
        stream.ratio(target.len()),
        stream.bit_rate(target.len()),
        psnr(&target, &rec),
        ssim_field(&target, &rec),
        stream.model_bytes,
    );
    println!("hybrid weights (Lorenzo, d_rows, d_cols): {:?}", stream.hybrid.weights);

    // 4. The error bound holds pointwise for both.
    let eb = stream.eb_abs;
    let worst = target
        .as_slice()
        .iter()
        .zip(rec.as_slice())
        .map(|(a, b)| (a - b).abs() as f64)
        .fold(0.0, f64::max);
    println!("error bound {eb:.6} — worst reconstruction error {worst:.6} (must be ≤)");
    assert!(worst <= eb * (1.0 + 1e-9));
    println!("✓ error bound verified");
}
