//! Quickstart: the unified `Codec` API.
//!
//! Both compressors — the SZ-style baseline and the cross-field codec —
//! implement the same fallible trait: `compress(&Field) ->
//! Result<EncodedStream, CfcError>` / `decompress(&[u8]) -> Result<Field,
//! CfcError>`. This example compresses one field both ways and verifies the
//! error bound.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cross_field_compression::core::archive::{ArchiveBuilder, ArchiveReader};
use cross_field_compression::core::config::{CfnnSpec, TrainConfig};
use cross_field_compression::core::pipeline::{CrossFieldCodec, CrossFieldCompressor};
use cross_field_compression::core::train::train_cfnn;
use cross_field_compression::datagen::FractalNoise;
use cross_field_compression::metrics::{psnr, ssim_field};
use cross_field_compression::sz::Codec;
use cross_field_compression::tensor::{Dataset, Field, Region, Shape};

fn main() {
    // 1. Make a pair of correlated fields (in practice: two variables of one
    //    simulation snapshot). The anchor carries fine-scale structure; the
    //    target is a nonlinear function of it — locally rough (hard for a
    //    Lorenzo predictor) but cross-field predictable.
    let (rows, cols) = (384usize, 384usize);
    let shape = Shape::d2(rows, cols);
    let smooth_a = FractalNoise::new(1)
        .with_base_freq(3.0)
        .with_persistence(0.35);
    let smooth_t = FractalNoise::new(9)
        .with_base_freq(2.5)
        .with_persistence(0.3)
        .with_octaves(3);
    let rough = FractalNoise::new(2)
        .with_base_freq(12.0)
        .with_persistence(0.6);
    let shared = rough.grid2(rows, cols, 0.7);
    let anchor = Field::from_vec(
        shape,
        smooth_a
            .grid2(rows, cols, 0.1)
            .iter()
            .zip(&shared)
            .map(|(&a, &b)| 4.0 * a + 9.0 * b)
            .collect(),
    );
    // target: its own large-scale structure (Lorenzo's home turf) plus the
    // anchor's fine-scale texture (CFNN's home turf)
    let target = Field::from_vec(
        shape,
        smooth_t
            .grid2(rows, cols, 0.4)
            .iter()
            .zip(&shared)
            .map(|(&a, &b)| 30.0 * a + 8.0 * b)
            .collect(),
    );

    // 2. Baseline: error-bounded SZ-style compression (Lorenzo + dual-quant)
    //    through the Codec trait.
    let rel_eb = 2e-4;
    let comp = CrossFieldCompressor::new(rel_eb);
    let baseline = comp.baseline();
    let base_stream = baseline.compress(&target).expect("baseline compress");
    let base_rec = baseline
        .decompress(&base_stream.bytes)
        .expect("baseline decompress");
    println!(
        "baseline     : {:.2}x  ({:.3} bits/value, PSNR {:.2} dB, SSIM {:.4})",
        base_stream.ratio(target.len()),
        base_stream.bit_rate(target.len()),
        psnr(&target, &base_rec),
        ssim_field(&target, &base_rec),
    );

    // 3. Cross-field: train a CFNN once (on original data — one model serves
    //    every error bound), package it with the decompressed anchor into a
    //    self-contained codec, and use the *same* two-method API.
    let spec = CfnnSpec::compact(1, 2);
    let trained = train_cfnn(&spec, &TrainConfig::default(), &[&anchor], &target);
    let anchor_dec = comp.roundtrip_anchor(&anchor).expect("anchor roundtrip");
    let codec = CrossFieldCodec::new(comp, trained, vec![anchor_dec]);
    let stream = codec.compress(&target).expect("cross-field compress");
    let rec = codec
        .decompress(&stream.bytes)
        .expect("cross-field decompress");
    println!(
        "cross-field  : {:.2}x  ({:.3} bits/value, PSNR {:.2} dB, SSIM {:.4})",
        stream.ratio(target.len()),
        stream.bit_rate(target.len()),
        psnr(&target, &rec),
        ssim_field(&target, &rec),
    );

    // 4. Malformed bytes are an Err, never a panic — the decode path is
    //    total over arbitrary input.
    let mut corrupt = stream.bytes.clone();
    corrupt[0] ^= 0xFF;
    println!("corrupt bytes: {}", codec.decompress(&corrupt).unwrap_err());

    // 5. The error bound holds pointwise for both codecs.
    let eb = stream.eb_abs;
    let worst = target
        .as_slice()
        .iter()
        .zip(rec.as_slice())
        .map(|(a, b)| (a - b).abs() as f64)
        .fold(0.0, f64::max);
    println!("error bound {eb:.6} — worst reconstruction error {worst:.6} (must be ≤)");
    assert!(worst <= eb * (1.0 + 1e-9));
    println!("✓ error bound verified");

    // 6. Layer 2 in one breath: the same pair as a chunked streaming
    //    archive. `write_to` streams blocks into any `io::Write`;
    //    `ArchiveReader::open` parses only the manifest; `decode_region`
    //    reads just the blocks that cover a window.
    let mut ds = Dataset::new("QUICK", shape);
    ds.push("anchor", anchor);
    ds.push("target", target.clone());
    let mut sink = Vec::new(); // any io::Write — a File works the same way
    let report = ArchiveBuilder::relative(1e-3)
        .cross_field("target", &["anchor"])
        .train_config(TrainConfig::fast()) // quick demo-scale training
        .chunk_elements(64 * cols) // 64 rows per block → 6 blocks
        .build()
        .write_to(&ds, &mut sink)
        .expect("archive write");
    let reader = ArchiveReader::new(&sink).expect("archive parse");
    let window = reader
        .decode_region("target", &Region::d2(100, 140, 200, 260))
        .expect("region decode");
    println!(
        "\narchive: {} fields, {:.2}x, {} blocks/field — decoded a {} window \
         from {} of {} blocks",
        report.fields.len(),
        report.ratio(),
        report.fields[0].n_blocks,
        window.shape(),
        2, // rows 100..140 span blocks 1 and 2 at 64 rows/block
        report.fields[0].n_blocks,
    );
}
