//! Domain scenario: putting an archived snapshot behind HTTP — the "data
//! portal" read path where many remote clients want small windows of a
//! large archived simulation snapshot, and the server should decode each
//! hot block once, not per request.
//!
//! The write side archives a synthetic CESM-ATM-class snapshot to a file
//! with the usual `ArchiveBuilder`. The serving side opens it behind an
//! `ArchiveStore` (decoded-block LRU + single-flight) and binds a
//! `cfc_serve::ArchiveServer` on an ephemeral loopback port. The client
//! side is deliberately a **raw `TcpStream`** speaking plain HTTP/1.1 —
//! no client library — to show the wire protocol is exactly what the
//! README documents: a JSON manifest at `/fields`, and binary frames
//! (`[u32 LE header length | JSON header | little-endian f32 samples]`)
//! at `/field/{name}/region`.
//!
//! ```sh
//! cargo run --release --example serve_archive
//! ```

use std::io::{BufWriter, Read, Write};
use std::net::TcpStream;

use cross_field_compression::core::archive::{
    ArchiveBuilder, ArchiveReader, ArchiveStore, StoreConfig,
};
use cross_field_compression::datagen::{paper_catalog, GenParams};
use cross_field_compression::tensor::{Region, Shape};

use cfc_serve::{ArchiveServer, ServeConfig};

/// One blocking HTTP/1.1 GET over a fresh TCP connection; returns
/// (status, body). Just enough protocol for the demo — real clients
/// would keep the connection alive and reuse it.
fn raw_get(addr: std::net::SocketAddr, target: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header end");
    let head = std::str::from_utf8(&raw[..text_end]).expect("ascii head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, raw[text_end + 4..].to_vec())
}

fn main() {
    // ---- write side: archive a synthetic CESM-ATM snapshot to a file ----
    let info = paper_catalog()
        .into_iter()
        .find(|d| d.name == "CESM-ATM")
        .unwrap();
    let ds = info.generate(Shape::d2(256, 512), GenParams::default());
    let path = std::env::temp_dir().join("cesm_snapshot.cfar");
    // the paper's Table 3 CESM role: CLDTOT is a cross-field target over
    // the per-level cloud-fraction anchors
    let report = ArchiveBuilder::relative(1e-3)
        .cross_field("CLDTOT", &["CLDLOW", "CLDMED", "CLDHGH"])
        .chunk_elements(1 << 15)
        .build()
        .write_to(
            &ds,
            BufWriter::new(std::fs::File::create(&path).expect("create archive file")),
        )
        .expect("archive write");
    println!(
        "archived {} fields, {:.2} MB → {:.2} MB ({:.2}x) at {}",
        report.fields.len(),
        report.raw_bytes as f64 / 1e6,
        report.archive_bytes as f64 / 1e6,
        report.ratio(),
        path.display()
    );

    // ---- serving side: store (decoded-block cache) + HTTP server ----
    let reader =
        ArchiveReader::open(std::fs::File::open(&path).expect("open")).expect("archive parse");
    let store = ArchiveStore::new(reader, StoreConfig::with_capacity(64 << 20));
    let mut server =
        ArchiveServer::bind(store, "127.0.0.1:0", ServeConfig::default()).expect("bind server");
    let addr = server.local_addr();
    println!("serving on http://{addr}\n");

    // ---- client side: raw TCP, nothing but the documented protocol ----
    let (status, manifest) = raw_get(addr, "/fields");
    assert_eq!(status, 200);
    println!("GET /fields → {status}");
    println!("{}", String::from_utf8_lossy(&manifest));

    // a window of the cross-field target: the server decodes only the
    // covering blocks (plus their anchor blocks), caches them, and ships
    // the samples as a binary frame
    let dims = ds.shape().dims().to_vec();
    let (h, w) = (24.min(dims[0]), 32.min(dims[1]));
    let target = format!("/field/CLDTOT/region?start=0,0&shape={h},{w}");
    let (status, frame) = raw_get(addr, &target);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&frame));

    // frame layout: u32 LE header length, JSON header, raw f32 LE samples
    let hdr_len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
    let header = std::str::from_utf8(&frame[4..4 + hdr_len]).expect("json header");
    let payload = &frame[4 + hdr_len..];
    println!("GET {target} → {status}");
    println!("  frame header: {header}");
    let samples: Vec<f32> = payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    println!(
        "  payload: {} samples ({} bytes), first corner value {:.4}",
        samples.len(),
        payload.len(),
        samples[0]
    );

    // the bytes on the wire are exactly a direct decode of the same region
    let region = Region::d2(0, h, 0, w);
    let direct = server
        .store()
        .decode_region("CLDTOT", &region)
        .expect("direct decode");
    assert_eq!(samples.len(), direct.as_slice().len());
    assert!(
        samples
            .iter()
            .zip(direct.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "HTTP payload must be bit-identical to decode_region"
    );
    println!("✓ HTTP region payload is bit-identical to ArchiveStore::decode_region");

    // errors are typed JSON, not hangs: unknown field → 404
    let (status, body) = raw_get(addr, "/field/NOPE/region?start=0,0&shape=4,4");
    assert_eq!(status, 404);
    println!(
        "GET /field/NOPE/… → {status} {}",
        String::from_utf8_lossy(&body).trim_end()
    );

    let stats = server.stats();
    let cache = server.store().snapshot();
    println!(
        "\nserver stats: {} connections, {} region requests; cache: {} decodes, {:.1}% hit rate",
        stats.connections,
        stats.region,
        cache.misses,
        cache.hit_rate() * 100.0
    );

    // graceful shutdown: drains in-flight requests, joins every thread
    server.shutdown();
    println!("✓ server shut down cleanly");
    std::fs::remove_file(&path).ok();
}
