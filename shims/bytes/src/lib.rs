//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the little-endian `Buf`/`BufMut` subset the workspace
//! uses, with the same panic-on-underflow contract as the real crate. Code
//! that must never panic on attacker-controlled input (the decode path)
//! bounds-checks before calling these, or uses the fallible readers in
//! `cfc_sz::error`.

/// Read cursor over a byte source. Mirrors `bytes::Buf` semantics: getters
/// panic when fewer bytes remain than requested.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Append-only byte sink. Mirrors `bytes::BufMut` for `Vec<u8>`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_f32_le(1.5);
        out.put_f64_le(-2.25);
        out.put_slice(b"xyz");
        let mut buf = out.as_slice();
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(buf.get_f32_le(), 1.5);
        assert_eq!(buf.get_f64_le(), -2.25);
        assert_eq!(buf.remaining(), 3);
        buf.advance(1);
        assert_eq!(buf, b"yz");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1u8];
        let _ = buf.get_u32_le();
    }
}
