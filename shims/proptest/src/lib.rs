//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with `#![proptest_config(...)]`, range strategies, `any::<T>()`,
//! `prop::collection::vec`, `prop::sample::select`, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are generated from a fixed-seed
//! deterministic RNG, so failures reproduce exactly; there is no shrinking.

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// Generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, f32, f64);

    /// Full-domain strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            (rng.rng.random::<u64>() >> 56) as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.rng.random::<u64>() >> 32) as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.rng.random()
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            // bias toward boundary values so varint edge cases get exercised
            match rng.rng.random_range(0u32..16) {
                0 => i64::MIN,
                1 => i64::MAX,
                2 => 0,
                _ => rng.rng.random::<u64>() as i64,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(strategy, len_range)` — a vector of `strategy`-generated values.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Choice strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy drawing uniformly from a fixed set.
    pub struct Select<T>(Vec<T>);

    /// `select(options)` — one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.rng.random_range(0..self.0.len())].clone()
        }
    }
}

pub mod test_runner {
    //! Case execution plumbing used by the `proptest!` macro expansion.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-test RNG.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Fixed-seed RNG so failures reproduce run to run.
        pub fn deterministic() -> Self {
            TestRng {
                rng: StdRng::seed_from_u64(0x5EED_CA5E),
            }
        }
    }

    /// A failed `prop_assert!` inside one generated case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Number of generated cases per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// `any::<T>()` — the canonical full-domain strategy for `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = __result {
                    panic!("property failed on case {}: {}", __case, e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                va,
                vb
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} ({:?} vs {:?})",
                format!($($fmt)+),
                va,
                vb
            )));
        }
    }};
}

pub mod prelude {
    //! One-import surface mirroring `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The harness itself: args sampled in range, asserts propagate Ok.
        #[test]
        fn generated_args_respect_ranges(
            n in 3usize..10,
            x in -2.0f64..2.0,
            bytes in prop::collection::vec(any::<u8>(), 0..16),
        ) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(bytes.len() < 16);
        }
    }
}
