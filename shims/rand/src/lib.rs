//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! Provides a deterministic xoshiro256++ [`rngs::StdRng`] seeded via
//! SplitMix64, the [`Rng`]/[`SeedableRng`] traits with `random` /
//! `random_range`, and [`seq::SliceRandom::shuffle`]. Streams differ from
//! upstream `rand` (the workspace only relies on same-seed determinism and
//! distribution quality, never on specific values).

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, full range for integers).
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for u8 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Half-open ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire-style widening multiply avoids modulo bias enough
                // for simulation sampling purposes.
                let r = rng.next_u64() as u128;
                let off = (r * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = <$t as StandardUniform>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw over the type's standard domain.
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a half-open range.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&f));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }
}
