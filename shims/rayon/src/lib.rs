//! Offline stand-in for `rayon`.
//!
//! Maps the parallel-iterator combinators used in this workspace onto plain
//! sequential `std` iterators, preserving element order (rayon's `collect`
//! is order-preserving too, so results are bit-identical). Data-parallel
//! speedups instead come from coarse-grained `std::thread::scope`
//! parallelism at the archive layer (`cfc_core::archive`), where one task
//! per field amortizes thread cost far better than per-slab tasks.

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.

    /// `into_par_iter()` — sequential fallback returning the std iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Convert into a (sequential) iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` / `par_chunks_mut()` on slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, chunk: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk)
        }
    }

    /// Mutable slice splitting.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk: usize) -> std::slice::ChunksMut<'_, T>;
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk)
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    /// rayon-only combinators grafted onto every iterator.
    pub trait ParallelIteratorExt: Iterator + Sized {
        /// rayon's `flat_map_iter` == std `flat_map`.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }
    }

    impl<I: Iterator + Sized> ParallelIteratorExt for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn combinators_match_sequential_results() {
        let v: Vec<usize> = (0..10usize)
            .into_par_iter()
            .flat_map_iter(|i| (0..3usize).map(move |j| i * 3 + j))
            .collect();
        assert_eq!(v, (0..30).collect::<Vec<_>>());

        let data = [1, 2, 3, 4];
        let sum: i32 = data.par_iter().sum();
        assert_eq!(sum, 10);

        let mut buf = vec![0u8; 6];
        buf.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, c)| c.fill(i as u8));
        assert_eq!(buf, [0, 0, 1, 1, 2, 2]);
    }
}
