//! Umbrella crate re-exporting the whole cross-field compression workspace.
//!
//! Reproduction of "Enhancing Lossy Compression Through Cross-Field
//! Information for Scientific Applications" (SC 2024). See `DESIGN.md` for
//! the system inventory and `EXPERIMENTS.md` for reproduced results.

pub use cfc_core as core;
pub use cfc_datagen as datagen;
pub use cfc_metrics as metrics;
pub use cfc_nn as nn;
pub use cfc_sz as sz;
pub use cfc_tensor as tensor;
