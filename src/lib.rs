//! Umbrella crate re-exporting the whole cross-field compression workspace.
//!
//! Reproduction of "Enhancing Lossy Compression Through Cross-Field
//! Information for Scientific Applications" (SC 2024).
//!
//! Start with the unified fallible [`Codec`] trait (implemented by
//! [`sz::SzCompressor`] and [`core::CrossFieldCodec`]) for single fields,
//! and [`core::archive`] ([`core::ArchiveBuilder`] → `ArchiveWriter` /
//! `ArchiveReader`) for whole multi-field snapshots. Every decode-path
//! failure is a typed [`CfcError`], never a panic.

pub use cfc_core as core;
pub use cfc_datagen as datagen;
pub use cfc_metrics as metrics;
pub use cfc_nn as nn;
pub use cfc_sz as sz;
pub use cfc_tensor as tensor;

pub use cfc_sz::{CfcError, Codec, EncodedStream};
