//! Property tests for chunk-boundary correctness of the v2 archive
//! container:
//!
//! * for random shapes, chunk sizes, and sub-ranges, `decode_region` must
//!   equal the same slice of `decode_all` — block boundaries must never
//!   leak into the samples;
//! * a single flipped bit anywhere inside a block payload must surface as
//!   a typed [`CfcError::ChecksumMismatch`], never a panic and never a
//!   silent wrong decode.

use proptest::prelude::*;

use cross_field_compression::core::archive::{ArchiveBuilder, ArchiveReader};
use cross_field_compression::sz::CfcError;
use cross_field_compression::tensor::{Dataset, Field, Region, Shape};

/// Deterministic two-field snapshot parameterized by a few wave numbers so
/// every proptest case sees different data.
fn snapshot(shape: Shape, k0: f32, k1: f32, amp: f32) -> Dataset {
    let a = Field::from_fn(shape, |i| {
        let x = i[0] as f32 * (0.05 + k0 * 0.01);
        let y = *i.get(1).unwrap_or(&0) as f32 * (0.03 + k1 * 0.01);
        let z = *i.get(2).unwrap_or(&0) as f32 * 0.07;
        x.sin() * amp + y.cos() * (amp * 0.5) + z * 0.3 + 10.0
    });
    let b = a.map(|v| 0.7 * v - 3.0);
    let mut ds = Dataset::new("PROP", shape);
    ds.push("A", a);
    ds.push("B", b);
    ds
}

/// Map a `(lo_frac, hi_frac)` pair in 0..1000 to a non-empty subrange of
/// `0..extent`.
fn subrange(extent: usize, lo: u32, hi: u32) -> (usize, usize) {
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    let s = (lo as usize * extent) / 1001;
    let e = ((hi as usize * extent) / 1001 + 1).min(extent);
    (s.min(extent - 1), e.max(s + 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// 2-D: any sub-range of any chunking equals the slice of decode_all.
    #[test]
    fn region_equals_decode_all_slice_2d(
        rows in 4usize..40,
        cols in 4usize..20,
        chunk_rows in 1usize..14,
        f0 in 0u32..1000, f1 in 0u32..1000,
        f2 in 0u32..1000, f3 in 0u32..1000,
        k0 in 0u32..8, k1 in 0u32..8,
    ) {
        let shape = Shape::d2(rows, cols);
        let ds = snapshot(shape, k0 as f32, k1 as f32, 15.0);
        let bytes = ArchiveBuilder::relative(1e-3)
            .chunk_elements(chunk_rows * cols)
            .build()
            .write(&ds)
            .expect("write");
        let reader = ArchiveReader::new(&bytes).expect("parse");
        let dec = reader.decode_all().expect("decode_all");
        let (r0, r1) = subrange(rows, f0, f1);
        let (c0, c1) = subrange(cols, f2, f3);
        let region = Region::d2(r0, r1, c0, c1);
        for name in ["A", "B"] {
            let got = reader.decode_region(name, &region).expect("decode_region");
            let want = dec.expect_field(name).crop(&region);
            prop_assert_eq!(got, want);
        }
    }

    /// 3-D: same property across depth-chunked volumes.
    #[test]
    fn region_equals_decode_all_slice_3d(
        depth in 2usize..12,
        rows in 4usize..10,
        cols in 4usize..10,
        chunk_slabs in 1usize..5,
        f0 in 0u32..1000, f1 in 0u32..1000,
        k0 in 0u32..8, k1 in 0u32..8,
    ) {
        let shape = Shape::d3(depth, rows, cols);
        let ds = snapshot(shape, k0 as f32, k1 as f32, 8.0);
        let bytes = ArchiveBuilder::relative(1e-3)
            .chunk_elements(chunk_slabs * rows * cols)
            .build()
            .write(&ds)
            .expect("write");
        let reader = ArchiveReader::new(&bytes).expect("parse");
        let dec = reader.decode_all().expect("decode_all");
        let (d0, d1) = subrange(depth, f0, f1);
        let region = Region::d3(d0, d1, 0, rows, 1, cols);
        for name in ["A", "B"] {
            let got = reader.decode_region(name, &region).expect("decode_region");
            let want = dec.expect_field(name).crop(&region);
            prop_assert_eq!(got, want);
        }
    }

    /// Any single flipped bit inside any block payload is caught by the
    /// block CRC as a typed error — never a panic, never a wrong decode.
    #[test]
    fn flipped_block_bit_is_a_typed_checksum_error(
        rows in 6usize..24,
        cols in 4usize..12,
        chunk_rows in 1usize..8,
        pick in 0u32..1_000_000,
        bit in 0u8..8,
        k0 in 0u32..8,
    ) {
        let shape = Shape::d2(rows, cols);
        let ds = snapshot(shape, k0 as f32, 3.0, 20.0);
        let bytes = ArchiveBuilder::relative(1e-3)
            .chunk_elements(chunk_rows * cols)
            .build()
            .write(&ds)
            .expect("write");
        let reader = ArchiveReader::new(&bytes).expect("parse");

        // choose a (field, block, byte) uniformly from all block payloads
        let spans: Vec<(String, usize, u64, usize)> = reader
            .entries()
            .iter()
            .flat_map(|e| {
                (0..e.n_blocks()).map(move |bi| {
                    let (off, len) = e.block_span(bi).expect("v2 span");
                    (e.name.clone(), bi, off, len)
                })
            })
            .collect();
        let total: usize = spans.iter().map(|s| s.3).sum();
        prop_assert!(total > 0, "block payloads cannot be empty");
        let mut target = pick as usize % total;
        let (name, bi, off, _) = spans
            .iter()
            .find(|s| {
                if target < s.3 {
                    true
                } else {
                    target -= s.3;
                    false
                }
            })
            .expect("span found");

        let mut bad = bytes.clone();
        bad[*off as usize + target] ^= 1 << bit;
        let bad_reader = ArchiveReader::new(&bad).expect("TOC untouched");
        let res = std::panic::catch_unwind(|| bad_reader.decode_block(name, *bi));
        match res {
            Ok(Err(ref e)) if matches!(e.root_cause(), CfcError::ChecksumMismatch { .. }) => {
                // the error wrapper must attribute the failure to the
                // exact field and block whose payload was flipped
                prop_assert!(
                    matches!(
                        e,
                        CfcError::InField { field, block: Some(b), .. }
                            if field == name && b == bi
                    ),
                    "wrong attribution: {e:?} for field {name} block {bi}"
                );
            }
            Ok(other) => prop_assert!(false, "expected ChecksumMismatch, got {other:?}"),
            Err(_) => prop_assert!(false, "decode_block panicked on a flipped bit"),
        }
        // the full decode hits the same wall, typed
        let full = bad_reader.decode_all();
        prop_assert!(
            matches!(&full, Err(e) if matches!(e.root_cause(), CfcError::ChecksumMismatch { .. })),
            "expected ChecksumMismatch from decode_all, got {full:?}"
        );
    }
}
