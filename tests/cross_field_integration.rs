//! Cross-crate integration tests: the full paper pipeline on the synthetic
//! datasets, spanning `cfc-datagen → cfc-core → cfc-sz → cfc-metrics`.

use cross_field_compression::core::config::{CfnnSpec, TrainConfig};
use cross_field_compression::core::pipeline::CrossFieldCompressor;
use cross_field_compression::core::train::train_cfnn;
use cross_field_compression::datagen::{self, GenParams};
use cross_field_compression::metrics::{max_abs_error, psnr, ssim_field};
use cross_field_compression::sz::{Codec, SzCompressor};
use cross_field_compression::tensor::{Field, FieldStats, Shape};

fn small_params() -> GenParams {
    GenParams::default()
}

#[test]
fn every_dataset_field_roundtrips_within_bound() {
    // all fields of all three (shrunken) datasets through the baseline
    let datasets = [
        datagen::scale::generate(Shape::d3(6, 40, 40), small_params()),
        datagen::cesm::generate(Shape::d2(48, 64), small_params()),
        datagen::hurricane::generate(Shape::d3(6, 40, 40), small_params()),
    ];
    for ds in &datasets {
        for (name, field) in ds.iter() {
            let c = SzCompressor::baseline(1e-3);
            let stream = c.compress(field).expect("compress");
            let dec = c.decompress(&stream.bytes).expect("decompress");
            let err = max_abs_error(field, &dec);
            assert!(
                err <= stream.eb_abs * (1.0 + 1e-9),
                "{}:{name} bound violated: {err} > {}",
                ds.name(),
                stream.eb_abs
            );
            assert!(
                psnr(field, &dec) > 40.0,
                "{}:{name} PSNR too low",
                ds.name()
            );
        }
    }
}

#[test]
fn cross_field_pipeline_roundtrips_on_hurricane() {
    let ds = datagen::hurricane::generate(Shape::d3(8, 48, 48), small_params());
    let target = ds.expect_field("Wf");
    let anchors: Vec<&Field> = ["Uf", "Vf", "Pf"]
        .iter()
        .map(|a| ds.expect_field(a))
        .collect();
    let comp = CrossFieldCompressor::new(1e-3);
    let anchors_dec: Vec<Field> = anchors
        .iter()
        .map(|a| comp.roundtrip_anchor(a).unwrap())
        .collect();
    let refs: Vec<&Field> = anchors_dec.iter().collect();
    let spec = CfnnSpec::compact(3, 3);
    let mut trained = train_cfnn(&spec, &TrainConfig::fast(), &anchors, target);
    let stream = comp.compress(&mut trained, target, &refs).unwrap();
    let dec = comp.decompress(&stream.bytes, &refs).unwrap();
    assert!(max_abs_error(target, &dec) <= stream.eb_abs * (1.0 + 1e-9));
    assert!(ssim_field(target, &dec) > 0.9);
    // stream self-describes: decoding twice gives identical fields
    let dec2 = comp.decompress(&stream.bytes, &refs).unwrap();
    assert_eq!(dec.as_slice(), dec2.as_slice());
}

#[test]
fn cross_field_beats_baseline_on_strongly_coupled_pair() {
    // the headline claim, on data where the cross-field signal dominates:
    // the target's fine structure is carried by the anchor
    let (rows, cols) = (256usize, 256usize);
    let shape = Shape::d2(rows, cols);
    let rough = datagen::FractalNoise::new(5)
        .with_base_freq(14.0)
        .with_persistence(0.65);
    let smooth = datagen::FractalNoise::new(6)
        .with_base_freq(2.0)
        .with_persistence(0.3)
        .with_octaves(3);
    let shared = rough.grid2(rows, cols, 0.2);
    let anchor = Field::from_vec(shape, shared.iter().map(|&b| 10.0 * b).collect());
    let target = Field::from_vec(
        shape,
        smooth
            .grid2(rows, cols, 0.8)
            .iter()
            .zip(&shared)
            .map(|(&a, &b)| 20.0 * a + 12.0 * b)
            .collect(),
    );
    let comp = CrossFieldCompressor::new(5e-4);
    let anchor_dec = comp.roundtrip_anchor(&anchor).unwrap();
    let spec = CfnnSpec::compact(1, 2);
    let cfg = TrainConfig {
        epochs: 16,
        n_patches: 128,
        ..TrainConfig::fast()
    };
    let mut trained = train_cfnn(&spec, &cfg, &[&anchor], &target);
    let ours = comp
        .compress(&mut trained, &target, &[&anchor_dec])
        .unwrap();
    let base = comp.baseline().compress(&target).unwrap();
    let n = target.len();
    assert!(
        ours.ratio(n) > base.ratio(n),
        "cross-field {:.2}x should beat baseline {:.2}x on coupled data",
        ours.ratio(n),
        base.ratio(n)
    );
}

#[test]
fn psnr_identical_between_methods_at_same_bound() {
    // dual quantization ⇒ reconstruction depends only on the prequant
    // lattice, not the predictor: both methods give identical PSNR
    let ds = datagen::cesm::generate(Shape::d2(48, 64), small_params());
    let target = ds.expect_field("FLUT");
    let anchors: Vec<&Field> = ["FLNT"].iter().map(|a| ds.expect_field(a)).collect();
    let comp = CrossFieldCompressor::new(1e-3);
    let anchor_dec = comp.roundtrip_anchor(anchors[0]).unwrap();
    let spec = CfnnSpec::compact(1, 2);
    let mut trained = train_cfnn(&spec, &TrainConfig::fast(), &anchors, target);
    let ours = comp.compress(&mut trained, target, &[&anchor_dec]).unwrap();
    let ours_rec = comp.decompress(&ours.bytes, &[&anchor_dec]).unwrap();
    let base = comp.baseline();
    let base_rec = base
        .decompress(&base.compress(target).unwrap().bytes)
        .unwrap();
    let p_ours = psnr(target, &ours_rec);
    let p_base = psnr(target, &base_rec);
    assert!(
        (p_ours - p_base).abs() < 1e-9,
        "PSNR must match exactly: {p_ours} vs {p_base}"
    );
}

#[test]
fn model_rides_in_stream_and_decoder_needs_no_training() {
    // the decoder reconstructs using only (bytes, decompressed anchors)
    let ds = datagen::cesm::generate(Shape::d2(40, 56), small_params());
    let target = ds.expect_field("LWCF");
    let anchors: Vec<&Field> = ["FLUTC", "FLNT"]
        .iter()
        .map(|a| ds.expect_field(a))
        .collect();
    let comp = CrossFieldCompressor::new(2e-3);
    let anchors_dec: Vec<Field> = anchors
        .iter()
        .map(|a| comp.roundtrip_anchor(a).unwrap())
        .collect();
    let refs: Vec<&Field> = anchors_dec.iter().collect();
    let spec = CfnnSpec::compact(2, 2);
    let mut trained = train_cfnn(&spec, &TrainConfig::fast(), &anchors, target);
    let stream = comp.compress(&mut trained, target, &refs).unwrap();
    drop(trained); // decoder must not need it
    let dec = comp.decompress(&stream.bytes, &refs).unwrap();
    assert!(max_abs_error(target, &dec) <= stream.eb_abs * (1.0 + 1e-9));
}

#[test]
fn coupling_zero_removes_cross_field_advantage() {
    // with independent fields the hybrid should lean on Lorenzo and the
    // stream should cost at most ~model-overhead more than baseline
    let params = GenParams::default().with_coupling(0.0);
    let ds = datagen::hurricane::generate(Shape::d3(6, 40, 40), params);
    let target = ds.expect_field("Wf");
    let anchors: Vec<&Field> = ["Uf", "Vf", "Pf"]
        .iter()
        .map(|a| ds.expect_field(a))
        .collect();
    let comp = CrossFieldCompressor::new(1e-3);
    let anchors_dec: Vec<Field> = anchors
        .iter()
        .map(|a| comp.roundtrip_anchor(a).unwrap())
        .collect();
    let refs: Vec<&Field> = anchors_dec.iter().collect();
    let spec = CfnnSpec::compact(3, 3);
    let mut trained = train_cfnn(&spec, &TrainConfig::fast(), &anchors, target);
    let ours = comp.compress(&mut trained, target, &refs).unwrap();
    let base = comp.baseline().compress(target).unwrap();
    // the learned model discovered the anchors carry nothing: Lorenzo gets
    // the single largest weight (axis predictors collapse toward plain
    // previous-neighbour predictors, which keep some smoothing value)
    let w = &ours.hybrid.weights;
    assert!(
        w[0] >= w[1..].iter().cloned().fold(f64::MIN, f64::max) - 1e-9,
        "Lorenzo should carry the largest weight on uncoupled data: {w:?}"
    );
    // and the total overhead stays bounded by the model + slack
    assert!(ours.bytes.len() <= base.bytes.len() + ours.model_bytes + base.bytes.len() / 4);
}

#[test]
fn dataset_stats_are_stable_for_seeded_generation() {
    let a = datagen::scale::generate(Shape::d3(4, 24, 24), small_params());
    let b = datagen::scale::generate(Shape::d3(4, 24, 24), small_params());
    for (name, f) in a.iter() {
        let g = b.expect_field(name);
        assert_eq!(f.as_slice(), g.as_slice(), "{name} differs across runs");
        let s = FieldStats::of(f);
        assert!(s.std.is_finite() && s.std > 0.0, "{name} degenerate");
    }
}
