//! Differential tests of the table-driven Huffman decoder against the
//! bit-serial reference implementation.
//!
//! The fast decoder (packed multi-symbol primary table + per-length
//! fallback) must be observationally identical to the reference walk on
//! every input: same symbols on valid streams, `CfcError` (never a panic,
//! never a wrong-length output) on corrupt or truncated ones. Alphabet
//! shapes cover the hard cases: heavy skew (multi-symbol packs), uniform
//! (single-symbol packs), single-symbol alphabets, wide symbol values
//! (that don't fit the narrow packed fields), and exponential frequencies
//! (max-depth codes that overflow the primary table entirely).

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use cross_field_compression::sz::huffman::{HuffmanTable, TABLE_BITS};
use cross_field_compression::CfcError;

/// Decode with both decoders and require identical observable behaviour.
fn assert_equivalent(table: &HuffmanTable, bits: &[u8], count: usize) -> Result<(), String> {
    let fast = table.try_decode(bits, count);
    let slow = table.try_decode_reference(bits, count);
    match (&fast, &slow) {
        (Ok(f), Ok(s)) => {
            if f != s {
                return Err("decoders disagree on a valid stream".into());
            }
            if f.len() != count {
                return Err(format!("decoded {} symbols, wanted {count}", f.len()));
            }
        }
        (Err(_), Err(_)) => {}
        _ => {
            return Err(format!(
                "fast = {fast:?} disagrees with reference = {slow:?}"
            ))
        }
    }
    Ok(())
}

/// Skew a uniform symbol stream toward a centre value: the shape of real
/// quantization-code streams (mass at the zero-residual code).
fn skew(symbols: &mut [u32], centre: u32, every: usize) {
    for (k, s) in symbols.iter_mut().enumerate() {
        if k % every != 0 {
            *s = centre;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bounded streams: identical output, exact length.
    #[test]
    fn decoders_agree_on_valid_streams(symbols in prop::collection::vec(0u32..1025, 1..4096)) {
        let table = HuffmanTable::from_symbols(&symbols);
        let bits = table.encode(&symbols);
        let fast = table.try_decode(&bits, symbols.len()).expect("valid stream");
        prop_assert_eq!(&fast, &symbols);
        let slow = table.try_decode_reference(&bits, symbols.len()).expect("valid stream");
        prop_assert_eq!(&fast, &slow);
    }

    /// Skewed streams exercise the multi-symbol packed entries.
    #[test]
    fn decoders_agree_on_skewed_streams(
        symbols in prop::collection::vec(0u32..1025, 64..4096),
        centre in 0u32..1025,
        every in 2usize..40,
    ) {
        let mut symbols = symbols;
        skew(&mut symbols, centre, every);
        let table = HuffmanTable::from_symbols(&symbols);
        let bits = table.encode(&symbols);
        let fast = table.try_decode(&bits, symbols.len()).expect("valid stream");
        prop_assert_eq!(&fast, &symbols);
        prop_assert_eq!(
            fast,
            table.try_decode_reference(&bits, symbols.len()).expect("valid stream")
        );
    }

    /// Wide symbol values can't use the narrow packed fields — packs must
    /// degrade without changing the decoded stream.
    #[test]
    fn decoders_agree_on_wide_symbols(
        symbols in prop::collection::vec(any::<u32>(), 32..1024),
        centre_idx in 0usize..32,
        every in 2usize..12,
    ) {
        let mut symbols = symbols;
        let centre = symbols[centre_idx % symbols.len()];
        skew(&mut symbols, centre, every);
        let table = HuffmanTable::from_symbols(&symbols);
        let bits = table.encode(&symbols);
        let fast = table.try_decode(&bits, symbols.len()).expect("valid stream");
        prop_assert_eq!(&fast, &symbols);
        prop_assert_eq!(
            fast,
            table.try_decode_reference(&bits, symbols.len()).expect("valid stream")
        );
    }

    /// Truncating a valid stream anywhere gives Err from both decoders —
    /// never a panic, never a short Ok.
    #[test]
    fn truncation_is_a_typed_error(
        symbols in prop::collection::vec(0u32..1025, 16..512),
        every in 2usize..20,
        frac in 0.0f64..1.0,
    ) {
        let mut symbols = symbols;
        skew(&mut symbols, 512, every);
        let table = HuffmanTable::from_symbols(&symbols);
        let bits = table.encode(&symbols);
        let cut = ((bits.len() as f64) * frac) as usize;
        if cut < bits.len() {
            assert_equivalent(&table, &bits[..cut], symbols.len()).map_err(TestCaseError::fail)?;
        }
    }

    /// Arbitrary byte soup decoded against a real table: Err or an exact
    /// `count`-length output, identically in both decoders.
    #[test]
    fn garbage_never_panics(
        symbols in prop::collection::vec(0u32..1025, 16..256),
        garbage in prop::collection::vec(any::<u8>(), 0..512),
        count in 0usize..512,
    ) {
        let table = HuffmanTable::from_symbols(&symbols);
        assert_equivalent(&table, &garbage, count).map_err(TestCaseError::fail)?;
    }

    /// Bit flips in a valid stream: both decoders agree on Ok-vs-Err, and
    /// any Ok output has the demanded length.
    #[test]
    fn bit_flips_stay_equivalent(
        symbols in prop::collection::vec(0u32..1025, 64..512),
        every in 2usize..20,
        flip in any::<u64>(),
    ) {
        let mut symbols = symbols;
        skew(&mut symbols, 512, every);
        let table = HuffmanTable::from_symbols(&symbols);
        let mut bits = table.encode(&symbols);
        let at = (flip as usize) % (bits.len() * 8);
        bits[at / 8] ^= 1 << (at % 8);
        assert_equivalent(&table, &bits, symbols.len()).map_err(TestCaseError::fail)?;
    }
}

#[test]
fn single_symbol_alphabet_agrees() {
    let symbols = vec![42u32; 500];
    let table = HuffmanTable::from_symbols(&symbols);
    let bits = table.encode(&symbols);
    assert_eq!(table.try_decode(&bits, 500).unwrap(), symbols);
    assert_eq!(
        table.try_decode(&bits, 500).unwrap(),
        table.try_decode_reference(&bits, 500).unwrap()
    );
    // asking for more symbols than the stream holds is a typed error
    assert!(matches!(
        table.try_decode(&bits, 8 * bits.len() + 1),
        Err(CfcError::Truncated { .. })
    ));
}

#[test]
fn max_depth_alphabet_agrees() {
    // exponential frequencies force codes far past TABLE_BITS (up to the
    // 32-bit depth limit) — the primary table misses and every such symbol
    // takes the canonical fallback walk
    let freqs: Vec<(u32, u64)> = (0..40u32).map(|i| (i, 1u64 << i.min(50))).collect();
    let table = HuffmanTable::from_frequencies(&freqs);
    let data: Vec<u32> = (0..40u32).cycle().take(5000).collect();
    let bits = table.encode(&data);
    let fast = table.try_decode(&bits, data.len()).expect("valid stream");
    assert_eq!(fast, data);
    assert_eq!(
        fast,
        table
            .try_decode_reference(&bits, data.len())
            .expect("valid stream")
    );
    // sanity: this alphabet really does exceed the primary table width
    let ser = table.serialize();
    let max_len = ser[4..].chunks(5).map(|c| c[4] as u32).max().unwrap_or(0);
    assert!(max_len > TABLE_BITS);
}

#[test]
fn corrupt_tables_from_wire_still_decode_equivalently() {
    // tables deserialized from bytes (the decoder's real entry point)
    // behave identically to freshly built ones
    let symbols: Vec<u32> = (0..2000u32)
        .map(|i| if i % 3 == 0 { i % 700 } else { 350 })
        .collect();
    let table = HuffmanTable::from_symbols(&symbols);
    let (wire, _) = HuffmanTable::deserialize(&table.serialize());
    let bits = table.encode(&symbols);
    assert_eq!(wire.try_decode(&bits, symbols.len()).unwrap(), symbols);
    assert_eq!(
        wire.try_decode(&bits, symbols.len()).unwrap(),
        wire.try_decode_reference(&bits, symbols.len()).unwrap()
    );
}
