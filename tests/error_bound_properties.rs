//! Property-based tests of the compressor's core contract: the pointwise
//! error bound holds for arbitrary finite inputs, any shape, any bound.

use proptest::prelude::*;

use cross_field_compression::sz::{
    Codec, ErrorBound, PredictorKind, QuantizerConfig, SzCompressor,
};
use cross_field_compression::tensor::{Field, Shape};

fn compressor(abs_eb: f64, radius: u32) -> SzCompressor {
    SzCompressor {
        bound: ErrorBound::Absolute(abs_eb),
        quantizer: QuantizerConfig { radius },
        predictor: PredictorKind::Lorenzo,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// |v − v'| ≤ eb for arbitrary 2-D data, bounds, and quantizer radii.
    #[test]
    fn absolute_bound_holds_2d(
        rows in 2usize..24,
        cols in 2usize..24,
        eb_exp in -4i32..0,
        radius in prop::sample::select(vec![4u32, 64, 512]),
        seed in 0u64..1000,
    ) {
        let eb = 10f64.powi(eb_exp);
        let mut state = seed.wrapping_add(1).wrapping_mul(0x9E3779B97F4A7C15);
        let mut next = move || {
            state ^= state >> 12; state ^= state << 25; state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f32 / 1e4 - 0.8
        };
        let f = Field::from_fn(Shape::d2(rows, cols), |_| next() * 50.0);
        let c = compressor(eb, radius);
        let stream = c.compress(&f).unwrap();
        let dec = c.decompress(&stream.bytes).unwrap();
        for (a, b) in f.as_slice().iter().zip(dec.as_slice()) {
            prop_assert!(((a - b).abs() as f64) <= eb * (1.0 + 1e-9),
                "bound {eb} violated: {a} vs {b}");
        }
    }

    /// Same for 3-D volumes.
    #[test]
    fn absolute_bound_holds_3d(
        d0 in 2usize..6,
        d1 in 2usize..10,
        d2 in 2usize..10,
        seed in 0u64..1000,
    ) {
        let eb = 1e-2;
        let f = Field::from_fn(Shape::d3(d0, d1, d2), |idx| {
            let h = (idx[0].wrapping_mul(73856093)
                ^ idx[1].wrapping_mul(19349663)
                ^ idx[2].wrapping_mul(83492791))
                .wrapping_add(seed as usize);
            ((h % 10007) as f32) * 0.01 - 50.0
        });
        let c = compressor(eb, 512);
        let dec = c.decompress(&c.compress(&f).unwrap().bytes).unwrap();
        for (a, b) in f.as_slice().iter().zip(dec.as_slice()) {
            prop_assert!(((a - b).abs() as f64) <= eb * (1.0 + 1e-9));
        }
    }

    /// Relative bound: error ≤ rel · range(field).
    #[test]
    fn relative_bound_holds(
        rows in 3usize..20,
        cols in 3usize..20,
        rel_exp in -4i32..-1,
        scale in 1f32..1e4,
    ) {
        let rel = 10f64.powi(rel_exp);
        let f = Field::from_fn(Shape::d2(rows, cols), |idx| {
            ((idx[0] * 7 + idx[1] * 13) % 31) as f32 * scale
        });
        let c = SzCompressor::baseline(rel);
        let stream = c.compress(&f).unwrap();
        let dec = c.decompress(&stream.bytes).unwrap();
        let range = {
            let s = f.as_slice();
            let mn = s.iter().cloned().fold(f32::INFINITY, f32::min);
            let mx = s.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            (mx - mn) as f64
        };
        for (a, b) in f.as_slice().iter().zip(dec.as_slice()) {
            prop_assert!(((a - b).abs() as f64) <= rel * range * (1.0 + 1e-9));
        }
    }

    /// Compression is deterministic: same field → identical bytes.
    #[test]
    fn compression_is_deterministic(seed in 0u64..500) {
        let f = Field::from_fn(Shape::d2(16, 16), |idx| {
            ((idx[0] as u64 * 31 + idx[1] as u64 * 17 + seed) % 97) as f32
        });
        let c = SzCompressor::baseline(1e-3);
        prop_assert_eq!(c.compress(&f).unwrap().bytes, c.compress(&f).unwrap().bytes);
    }
}
