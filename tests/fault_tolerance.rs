//! End-to-end fault tolerance: deterministic fault injection against the
//! store's serving path, plus scrub/repair round-trips on damaged
//! archives.
//!
//! * transient I/O faults (timeouts) are retried with backoff and
//!   counted, invisibly to the caller;
//! * permanent corruption under [`DecodePolicy::Salvage`] fills exactly
//!   the damaged blocks, never pollutes the cache, and bumps
//!   `salvaged_blocks`;
//! * `scrub_bytes` finds injected corruption that `repair_bytes` then
//!   round-trips back to a fully decodable archive;
//! * on temporal (v3) archives, keyframe damage cascades `cascaded_from`
//!   blame through the dependent delta epochs — and stops at the next
//!   keyframe — while epoch-scoped store invalidation drops exactly the
//!   entries a torn-tail repair removed from disk.

use std::io::Cursor;

use cross_field_compression::core::archive::{
    repair_bytes, scrub_bytes, ArchiveBuilder, ArchiveReader, ArchiveStore, DecodePolicy,
    FaultInjectingReader, FaultPlan, ScrubKind, ScrubOptions, SeekSource, StoreConfig,
};
use cross_field_compression::core::config::TrainConfig;
use cross_field_compression::tensor::{Dataset, Field, Region, Shape};

const ROWS: usize = 24;
const COLS: usize = 24;
const ROWS_PER_BLOCK: usize = 6;

/// Anchor + cross-field target, 4 blocks per field.
fn sample_archive() -> Vec<u8> {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES
        .get_or_init(|| {
            let shape = Shape::d2(ROWS, COLS);
            let anchor = Field::from_fn(shape, |i| {
                ((i[0] as f32) * 0.2).sin() * 10.0 + i[1] as f32 * 0.1
            });
            let target = anchor.map(|v| 0.8 * v + 2.0);
            let mut ds = Dataset::new("FAULT", shape);
            ds.push("A", anchor);
            ds.push("T", target);
            ArchiveBuilder::relative(1e-3)
                .train_config(TrainConfig::fast())
                .cross_field("T", &["A"])
                .chunk_elements(ROWS_PER_BLOCK * COLS)
                .build()
                .write(&ds)
                .expect("archive write")
        })
        .clone()
}

const EPOCHS: usize = 6;
const INTERVAL: usize = 3;

/// The [`sample_archive`] structure evolved over [`EPOCHS`] epochs at
/// keyframe interval [`INTERVAL`]: keyframes at 0 and 3, each heading a
/// two-delta chain.
fn temporal_archive() -> Vec<u8> {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES
        .get_or_init(|| {
            let shape = Shape::d2(ROWS, COLS);
            let snapshots: Vec<Dataset> = (0..EPOCHS)
                .map(|e| {
                    let t = e as f32;
                    let anchor = Field::from_fn(shape, |i| {
                        ((i[0] as f32) * 0.2 + 0.04 * t).sin() * 10.0 + i[1] as f32 * 0.1 + 0.25 * t
                    });
                    let target = anchor.map(|v| 0.8 * v + 2.0);
                    let mut ds = Dataset::new("FAULT", shape);
                    ds.push("A", anchor);
                    ds.push("T", target);
                    ds
                })
                .collect();
            ArchiveBuilder::relative(1e-3)
                .train_config(TrainConfig::fast())
                .cross_field("T", &["A"])
                .chunk_elements(ROWS_PER_BLOCK * COLS)
                .keyframe_interval(INTERVAL)
                .build()
                .write_epochs(&snapshots)
                .expect("temporal archive write")
        })
        .clone()
}

/// Absolute span of one block of `field` at `epoch`.
fn block_span_at(bytes: &[u8], field: &str, epoch: usize, block: usize) -> (u64, usize) {
    let reader = ArchiveReader::new(bytes).expect("parse");
    reader
        .entries()
        .iter()
        .find(|e| e.name == field && e.epoch == epoch)
        .expect("entry")
        .block_span(block)
        .expect("span")
}

fn block_span(bytes: &[u8], field: &str, block: usize) -> (u64, usize) {
    let reader = ArchiveReader::new(bytes).expect("parse");
    reader
        .entries()
        .iter()
        .find(|e| e.name == field)
        .expect("field")
        .block_span(block)
        .expect("span")
}

fn faulty_store(
    bytes: Vec<u8>,
    plan: FaultPlan,
    config: StoreConfig,
) -> ArchiveStore<SeekSource<FaultInjectingReader<Cursor<Vec<u8>>>>> {
    ArchiveStore::open(
        SeekSource::new(FaultInjectingReader::new(Cursor::new(bytes), plan)),
        config,
    )
    .expect("manifest reads cleanly")
}

#[test]
fn transient_faults_are_retried_invisibly() {
    let bytes = sample_archive();
    let (off, len) = block_span(&bytes, "A", 1);
    // the first two reads of A[1] time out; the third succeeds
    let plan = FaultPlan::new().transient_at(off..off + len as u64, 2);
    let clean = ArchiveReader::new(&bytes)
        .expect("parse")
        .decode_field("A")
        .expect("clean decode");

    let store = faulty_store(bytes, plan.clone(), StoreConfig::default());
    let region = Region::d2(ROWS_PER_BLOCK, 2 * ROWS_PER_BLOCK, 0, COLS);
    let got = store
        .decode_region("A", &region)
        .expect("transient faults must be retried away");
    let lo = ROWS_PER_BLOCK * COLS;
    assert!(
        got.as_slice()
            .iter()
            .zip(&clean.as_slice()[lo..2 * lo])
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "retried decode must be byte-identical"
    );
    let stats = store.snapshot();
    assert_eq!(stats.retries, 2, "{stats:?}");
    assert_eq!(stats.salvaged_blocks, 0);
    assert_eq!(plan.stats().transient_errors, 2);
}

#[test]
fn exhausted_retries_surface_as_transient_errors() {
    let bytes = sample_archive();
    let (off, len) = block_span(&bytes, "A", 0);
    // effectively never clears within this test's handful of attempts
    let plan = FaultPlan::new().transient_at(off..off + len as u64, 1_000);
    let config = StoreConfig {
        max_retries: 1,
        retry_backoff: std::time::Duration::from_micros(100),
        ..StoreConfig::default()
    };
    let store = faulty_store(bytes, plan, config);

    let err = store
        .decode_block("A", 0)
        .expect_err("fault never clears, so retries must exhaust");
    assert!(err.is_transient(), "{err}");
    assert_eq!(store.snapshot().retries, 1, "one retry, then give up");

    // salvage turns the same exhaustion into fill + damage
    let s = store
        .decode_region_policy(
            "A",
            &Region::d2(0, 2 * ROWS_PER_BLOCK, 0, COLS),
            DecodePolicy::salvage(),
        )
        .expect("salvage survives a permanently-failing block");
    assert_eq!(s.damage.blocks_of("A"), vec![0]);
    assert_eq!(store.snapshot().salvaged_blocks, 1);
}

#[test]
fn salvage_fill_is_never_cached() {
    let mut bytes = sample_archive();
    let (off, len) = block_span(&bytes, "T", 1);
    bytes[off as usize + len / 2] ^= 0x04; // permanent payload rot

    // readahead off: the tier-2 purity counts below are exact, and a
    // speculative decode of T[2]/T[3] would add its own tier-2 entries
    let store = ArchiveStore::open(Cursor::new(bytes), StoreConfig::default().no_prefetch())
        .expect("parse");
    let region = Region::d2(0, 2 * ROWS_PER_BLOCK, 0, COLS);

    // strict: typed failure naming the block
    let err = store.decode_region("T", &region).expect_err("strict fails");
    assert!(err.to_string().contains('T'), "{err}");

    // salvage twice: the fill is rebuilt each time (cache never holds it)
    for round in 1..=2u64 {
        let s = store
            .decode_region_policy("T", &region, DecodePolicy::Salvage { fill: -3.0 })
            .expect("salvage");
        assert_eq!(s.damage.blocks_of("T"), vec![1], "round {round}");
        let span = ROWS_PER_BLOCK * COLS;
        assert!(
            s.data.as_slice()[span..2 * span].iter().all(|v| *v == -3.0),
            "round {round}: damaged block must be fill"
        );
        assert_eq!(store.snapshot().salvaged_blocks, round);
    }

    // and a strict read afterwards still reports the corruption — it was
    // never served fill out of the cache
    assert!(store.decode_block("T", 1).is_err());

    // tier-2 purity: the compressed-bytes tier must hold exactly the
    // blocks whose decode fully succeeded — T[0] plus the anchor blocks
    // A[0] and A[1] — and never the CRC-failed bytes of T[1], even though
    // they were fetched on every attempt
    let s = store.snapshot();
    assert_eq!(
        s.tier2_blocks, 3,
        "tier 2 must hold T[0], A[0], A[1] and nothing else"
    );
    assert_eq!(
        s.tier2_insertions, 3,
        "the damaged block's bytes must never have entered tier 2"
    );
}

#[test]
fn scrub_finds_injected_corruption_and_repair_roundtrips() {
    let clean = sample_archive();
    assert!(
        scrub_bytes(&clean, &ScrubOptions { deep: true }).is_clean(),
        "pristine archive must scrub clean"
    );
    let want = ArchiveReader::new(&clean)
        .expect("parse")
        .decode_all()
        .expect("decode");

    // payload rot is found and located
    let (off, len) = block_span(&clean, "T", 3);
    let mut bad = clean.clone();
    bad[off as usize + len / 2] ^= 0x80;
    let report = scrub_bytes(&bad, &ScrubOptions::default());
    assert!(report.findings.iter().any(|f| f.kind == ScrubKind::Checksum
        && f.field.as_deref() == Some("T")
        && f.block == Some(3)));

    // a torn tail is truncated back to a fully decodable archive
    let torn = &clean[..off as usize + len / 2];
    assert!(!scrub_bytes(torn, &ScrubOptions::default()).is_clean());
    let fixed = repair_bytes(torn).expect("scan-recoverable");
    assert!(!fixed.actions.is_empty());
    let report = scrub_bytes(&fixed.bytes, &ScrubOptions { deep: true });
    assert!(report.is_clean(), "{:?}", report.findings);
    let got = ArchiveReader::new(&fixed.bytes)
        .expect("parse repaired")
        .decode_all()
        .expect("decode repaired");
    // 3 intact blocks survive, byte-identical to the clean decode's prefix
    let keep = 3 * ROWS_PER_BLOCK * COLS;
    for name in ["A", "T"] {
        assert!(
            got.expect_field(name).as_slice()[..keep]
                .iter()
                .zip(&want.expect_field(name).as_slice()[..keep])
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{name}: repaired prefix must match the clean decode"
        );
    }
}

/// Damage in a keyframe block is blamed causally through every epoch that
/// decodes against it: the same-epoch cross-field target, and the delta
/// chain hanging off the keyframe — until the next keyframe breaks the
/// chain and epochs decode clean again.
#[test]
fn keyframe_damage_cascades_blame_through_delta_epochs() {
    let mut bytes = temporal_archive();
    let (off, len) = block_span_at(&bytes, "A", 0, 2);
    bytes[off as usize + len / 2] ^= 0x08; // rot inside keyframe block A[2]
    let reader = ArchiveReader::new(&bytes).expect("parse v3");

    // epoch 0: the target cascades off its damaged anchor block
    let s = reader
        .decode_field_policy_at("T", 0, DecodePolicy::salvage())
        .expect("salvage epoch 0");
    assert_eq!(s.damage.blocks_of("A"), vec![2]);
    assert_eq!(s.damage.blocks_of("T"), vec![2]);
    let root = s.damage.iter().find(|d| d.field == "A").expect("root");
    assert_eq!(root.cascaded_from, None, "the anchor block carries the rot");
    let t0 = s.damage.iter().find(|d| d.field == "T").expect("target");
    assert_eq!(t0.cascaded_from.as_deref(), Some("A"));

    // delta epochs 1 and 2 chain on the damaged data: blame propagates
    // with `cascaded_from` naming the chain predecessor, never the epoch's
    // own (healthy) bytes
    for epoch in [1usize, 2] {
        let s = reader
            .decode_field_policy_at("T", epoch, DecodePolicy::salvage())
            .expect("salvage delta epoch");
        let name = format!("T@e{epoch}");
        assert_eq!(s.damage.blocks_of(&name), vec![2], "{}", s.damage.summary());
        let d = s.damage.iter().find(|d| d.field == name).expect("entry");
        let from = d.cascaded_from.as_deref().expect("cascaded damage");
        assert!(
            from.starts_with('T') || from.starts_with('A'),
            "blame must point into the chain, got {from}"
        );
    }

    // the next keyframe (epoch 3) breaks the chain: it and its deltas
    // decode strictly clean
    for epoch in 3..EPOCHS {
        for field in ["A", "T"] {
            let s = reader
                .decode_field_policy_at(field, epoch, DecodePolicy::salvage())
                .expect("decode past next keyframe");
            assert!(
                s.damage.is_empty(),
                "epoch {epoch} field {field} must be clean: {}",
                s.damage.summary()
            );
        }
    }
}

/// The post-`cfc-fsck --repair` workflow on a temporal archive: a torn
/// tail is truncated back to the last complete epoch boundary on disk,
/// and epoch-scoped invalidation then drops exactly the store entries the
/// repair removed — earlier epochs keep serving from cache.
#[test]
fn repair_truncation_plus_epoch_invalidation_drops_stale_entries() {
    let bytes = temporal_archive();
    let path = std::env::temp_dir().join(format!("cfc_fault_v3_{}.cfar", std::process::id()));
    std::fs::write(&path, &bytes).expect("write temp archive");

    let store = ArchiveStore::open(
        std::fs::File::open(&path).expect("open"),
        StoreConfig {
            max_retries: 0,
            ..StoreConfig::default().no_prefetch()
        },
    )
    .expect("parse");
    // warm epoch 0 and the whole second chain (keyframe 3 + deltas 4, 5)
    let e3 = store.decode_field_at("A", 3).expect("epoch 3");
    for epoch in [0usize, 4, 5] {
        store.decode_field_at("A", epoch).expect("warm");
    }

    // the file is torn inside epoch 4 and repaired in place: cfc-fsck
    // truncates to the 4 complete epochs and patches the epoch count
    let (off, len) = block_span_at(&bytes, "A", 4, 1);
    let torn = &bytes[..off as usize + len / 2];
    assert!(!scrub_bytes(torn, &ScrubOptions::default()).is_clean());
    let fixed = repair_bytes(torn).expect("torn tail is repairable");
    assert!(
        fixed
            .actions
            .iter()
            .any(|a| a.contains("truncate torn tail")),
        "{:?}",
        fixed.actions
    );
    assert_eq!(
        ArchiveReader::new(&fixed.bytes).expect("parse").n_epochs(),
        4
    );
    std::fs::write(&path, &fixed.bytes).expect("rewrite repaired archive");

    // purge the epochs the repair dropped, for both fields
    for field in ["A", "T"] {
        store.invalidate_field_at(field, 4).expect("invalidate");
    }

    // the surviving chain still serves from cache (no new misses)...
    let misses = store.snapshot().misses;
    assert_eq!(store.decode_field_at("A", 3).expect("cached epoch 3"), e3);
    assert_eq!(store.snapshot().misses, misses, "epoch 3 must stay cached");

    // ...while the dropped epochs are gone: nothing stale is served, the
    // read goes to disk and finds the bytes missing
    assert!(
        store.decode_field_at("A", 4).is_err(),
        "epoch 4 must not be served from a stale cache after invalidation"
    );
    let _ = std::fs::remove_file(&path);
}
