//! Golden-vector format conformance: the CFAR container layout is a
//! compatibility surface, pinned by committed fixtures under
//! `tests/golden/` (regenerate with `cargo run -p cfc-bench --bin
//! make_golden`).
//!
//! Each test decodes a committed fixture and asserts the manifest (names,
//! roles, anchors, shapes, block counts), the compression ratios, and the
//! pointwise max-error bounds — and, for layouts the current writer can
//! produce, that it still reproduces the fixture **byte-for-byte**. Any
//! accidental change to the serialized layout fails here first.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cfc_bench::golden;
use cross_field_compression::core::archive::{ArchiveReader, ArchiveSource, FieldRole};
use cross_field_compression::tensor::{Dataset, Region};

fn fixture(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

fn assert_within_bounds(orig: &Dataset, dec: &Dataset, entries: &[(String, f64)]) {
    for (name, eb) in entries {
        let o = orig.expect_field(name);
        let d = dec.expect_field(name);
        let worst = o
            .as_slice()
            .iter()
            .zip(d.as_slice())
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0, f64::max);
        assert!(
            worst <= eb * (1.0 + 1e-9),
            "{name}: worst error {worst} exceeds bound {eb}"
        );
    }
}

#[test]
fn v1_fixture_decodes_with_expected_manifest() {
    let bytes = fixture("small_v1.cfar");
    let reader = ArchiveReader::new(&bytes).expect("parse v1");
    assert_eq!(reader.version(), 1);
    assert_eq!(reader.name(), "GOLDEN");

    let names: Vec<&str> = reader.entries().iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["T", "P", "RH"]);
    let roles: Vec<FieldRole> = reader.entries().iter().map(|e| e.role).collect();
    assert_eq!(
        roles,
        [FieldRole::Anchor, FieldRole::Anchor, FieldRole::Target]
    );
    assert_eq!(reader.entries()[2].anchors, ["T", "P"]);
    for e in reader.entries() {
        assert!(e.eb_abs > 0.0 && e.eb_abs.is_finite());
        assert_eq!(e.n_blocks(), 1, "v1 entries are monolithic");
        assert_eq!(e.shape(), None, "v1 manifests predate the shape column");
        assert!(e.stream_len() > 0);
    }
    // the whole archive compresses (32*32 * 3 fields * 4 bytes raw)
    let raw = 32 * 32 * 3 * 4;
    assert!(bytes.len() < raw, "fixture must actually compress");

    let ds = golden::golden_dataset();
    let dec = reader.decode_all().expect("decode v1");
    assert_eq!(dec.field_names(), ds.field_names());
    let bounds: Vec<(String, f64)> = reader
        .entries()
        .iter()
        .map(|e| (e.name.clone(), e.eb_abs))
        .collect();
    assert_within_bounds(&ds, &dec, &bounds);
}

#[test]
fn v1_layout_is_reproducible_byte_for_byte() {
    // the frozen v1 writer must keep producing the committed bytes — this
    // is what lets `make_golden` regenerate the fixture forever
    let bytes = fixture("small_v1.cfar");
    assert_eq!(
        golden::write_v1(&golden::golden_dataset()),
        bytes,
        "write_v1 drifted from the committed v1 fixture"
    );
}

#[test]
fn v2_fixture_decodes_with_expected_manifest() {
    let bytes = fixture("small_v2.cfar");
    let reader = ArchiveReader::new(&bytes).expect("parse v2");
    assert_eq!(reader.version(), 2);
    assert_eq!(reader.name(), "GOLDEN");

    let ds = golden::golden_dataset();
    for e in reader.entries() {
        assert_eq!(e.shape(), Some(ds.shape()), "v2 manifests record shape");
        assert_eq!(e.n_blocks(), 4, "32 rows at 8 rows/block");
        let blocks: usize = (0..e.n_blocks()).filter_map(|i| e.block_len(i)).sum();
        assert!(
            e.stream_len() >= blocks,
            "payload must cover its blocks (plus meta for targets)"
        );
    }
    let rh = &reader.entries()[2];
    assert_eq!(rh.role, FieldRole::Target);
    assert_eq!(rh.anchors, ["T", "P"]);

    let dec = reader.decode_all().expect("decode v2");
    let bounds: Vec<(String, f64)> = reader
        .entries()
        .iter()
        .map(|e| (e.name.clone(), e.eb_abs))
        .collect();
    assert_within_bounds(&ds, &dec, &bounds);

    // per-field ratio sanity: baseline fields compress against raw f32;
    // the target's payload is dominated by its embedded CFNN on a field
    // this tiny (the paper's model-overhead effect), so only assert it is
    // present and bounded
    let n = ds.shape().len();
    for e in reader.entries() {
        let ratio = (n * 4) as f64 / e.stream_len() as f64;
        if e.role == FieldRole::Target {
            assert!(ratio > 0.1, "{}: ratio {ratio} implausibly low", e.name);
        } else {
            assert!(ratio > 1.0, "{}: ratio {ratio} too low", e.name);
        }
    }
}

#[test]
fn v2_writer_reproduces_fixture_byte_for_byte() {
    let bytes = fixture("small_v2.cfar");
    let written = golden::golden_builder()
        .chunk_elements(golden::GOLDEN_CHUNK_ELEMENTS)
        .build()
        .write(&golden::golden_dataset())
        .expect("write");
    assert_eq!(
        written, bytes,
        "the production writer drifted from the committed v2 fixture — \
         if the format change is intentional, bump ARCHIVE_VERSION and \
         regenerate with make_golden"
    );
}

#[test]
fn partial_block_fixture_accounts_exactly() {
    let bytes = fixture("partial_v2.cfar");
    let reader = ArchiveReader::new(&bytes).expect("parse");
    assert_eq!(reader.version(), 2);
    let ds = golden::golden_dataset_3d();
    for e in reader.entries() {
        // depth 5 at 2 slabs/block → 3 blocks, last partial
        assert_eq!(e.n_blocks(), 3);
        let blocks: usize = (0..e.n_blocks()).filter_map(|i| e.block_len(i)).sum();
        assert_eq!(
            e.stream_len(),
            blocks,
            "baseline fields carry no meta; payload must equal Σ block lens"
        );
    }
    let written = golden::golden_partial_builder()
        .build()
        .write(&ds)
        .expect("write");
    assert_eq!(written, bytes, "partial-block fixture drifted");

    let dec = reader.decode_all().expect("decode");
    let bounds: Vec<(String, f64)> = reader
        .entries()
        .iter()
        .map(|e| (e.name.clone(), e.eb_abs))
        .collect();
    assert_within_bounds(&ds, &dec, &bounds);
    // the partial final block decodes standalone with the right shape
    let last = reader.decode_block("U", 2).expect("partial block");
    assert_eq!(last.shape().dims(), &[1, 12, 12]);
}

#[test]
fn v3_keyframe_fixture_decodes_with_expected_manifest() {
    // keyframe_interval(1): every epoch is a keyframe, no delta entries
    let bytes = fixture("small_v3_keyframes.cfar");
    let reader = ArchiveReader::new(&bytes).expect("parse v3");
    assert_eq!(reader.version(), 3);
    assert_eq!(reader.name(), "GOLDEN");
    assert_eq!(reader.n_epochs(), 3);
    assert_eq!(reader.keyframe_interval(), 1);
    assert_eq!(reader.fields_per_epoch(), 3);
    assert_eq!(reader.entries().len(), 9, "3 epochs × 3 fields, flat");

    for (i, e) in reader.entries().iter().enumerate() {
        assert_eq!(e.epoch, i / 3, "entries are laid out epoch-major");
        assert_ne!(e.role, FieldRole::Delta, "keyframe-only archive");
        assert_eq!(e.n_blocks(), 4, "32 rows at 8 rows/block");
    }
    for epoch in 0..3 {
        let orig = golden::golden_epoch_dataset(epoch as f32);
        let dec = reader.decode_epoch(epoch).expect("decode epoch");
        let bounds: Vec<(String, f64)> = reader.entries()[epoch * 3..(epoch + 1) * 3]
            .iter()
            .map(|e| (e.name.clone(), e.eb_abs))
            .collect();
        assert_within_bounds(&orig, &dec, &bounds);
    }
}

#[test]
fn v3_delta_fixture_decodes_with_expected_manifest() {
    // interval 3 over 6 epochs: keyframes at 0 and 3, two-delta chains after
    let bytes = fixture("small_v3_delta.cfar");
    let reader = ArchiveReader::new(&bytes).expect("parse v3");
    assert_eq!(reader.version(), 3);
    assert_eq!(reader.n_epochs(), golden::GOLDEN_V3_EPOCHS);
    assert_eq!(reader.keyframe_interval(), golden::GOLDEN_KEYFRAME_INTERVAL);
    assert_eq!(reader.entries().len(), 18);

    for e in reader.entries() {
        if e.epoch % golden::GOLDEN_KEYFRAME_INTERVAL == 0 {
            assert_ne!(e.role, FieldRole::Delta, "epoch {} is a keyframe", e.epoch);
        } else {
            assert_eq!(e.role, FieldRole::Delta, "epoch {} is a delta", e.epoch);
            assert!(e.anchors.is_empty(), "the anchor is implicit (epoch−1)");
            assert!(
                e.stream_len() > 0 && e.meta_len() > 0,
                "delta entries carry hybrid weights in the meta area"
            );
        }
    }
    for epoch in 0..golden::GOLDEN_V3_EPOCHS {
        let orig = golden::golden_epoch_dataset(epoch as f32);
        let dec = reader.decode_epoch(epoch).expect("decode epoch");
        let bounds: Vec<(String, f64)> = reader.entries()[epoch * 3..(epoch + 1) * 3]
            .iter()
            .map(|e| (e.name.clone(), e.eb_abs))
            .collect();
        assert_within_bounds(&orig, &dec, &bounds);
    }
}

#[test]
fn v3_writers_reproduce_fixtures_byte_for_byte() {
    let keyframes = golden::golden_builder()
        .chunk_elements(golden::GOLDEN_CHUNK_ELEMENTS)
        .keyframe_interval(1)
        .build()
        .write_epochs(&golden::golden_epochs(3))
        .expect("write");
    assert_eq!(
        keyframes,
        fixture("small_v3_keyframes.cfar"),
        "the production writer drifted from the committed v3 keyframe \
         fixture — if the format change is intentional, bump \
         ARCHIVE_VERSION and regenerate with make_golden"
    );

    let delta = golden::golden_builder()
        .chunk_elements(golden::GOLDEN_CHUNK_ELEMENTS)
        .keyframe_interval(golden::GOLDEN_KEYFRAME_INTERVAL)
        .build()
        .write_epochs(&golden::golden_epochs(golden::GOLDEN_V3_EPOCHS))
        .expect("write");
    assert_eq!(
        delta,
        fixture("small_v3_delta.cfar"),
        "the production writer drifted from the committed v3 delta fixture"
    );
}

#[test]
fn v3_partial_block_fixture_accounts_exactly() {
    let bytes = fixture("partial_v3.cfar");
    let reader = ArchiveReader::new(&bytes).expect("parse");
    assert_eq!(reader.version(), 3);
    assert_eq!(reader.n_epochs(), 4);
    assert_eq!(reader.keyframe_interval(), 2);
    for e in reader.entries() {
        // depth 5 at 2 slabs/block → 3 blocks, last partial — in every epoch
        assert_eq!(e.n_blocks(), 3);
    }
    let written = golden::golden_partial_builder()
        .keyframe_interval(2)
        .build()
        .write_epochs(&golden::golden_epochs_3d(4))
        .expect("write");
    assert_eq!(written, bytes, "v3 partial-block fixture drifted");

    let orig = golden::golden_epochs_3d(4);
    for epoch in 0..4 {
        let dec = reader.decode_epoch(epoch).expect("decode");
        let bounds: Vec<(String, f64)> = reader.entries()[epoch * 2..(epoch + 1) * 2]
            .iter()
            .map(|e| (e.name.clone(), e.eb_abs))
            .collect();
        assert_within_bounds(&orig[epoch], &dec, &bounds);
    }
    // a partial final block of a *delta* epoch decodes standalone
    let last = reader.decode_block_at("U", 2, 3).expect("partial block");
    assert_eq!(last.shape().dims(), &[1, 12, 12]);
}

/// [`ArchiveSource`] wrapper that counts every byte actually read — the
/// instrument behind the random-access acceptance test.
struct CountingReader<R> {
    inner: R,
    read: Arc<AtomicU64>,
}

impl<R: ArchiveSource> ArchiveSource for CountingReader<R> {
    fn len(&self) -> std::io::Result<u64> {
        self.inner.len()
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        self.inner.read_exact_at(offset, buf)?;
        self.read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

#[test]
fn decode_region_reads_strictly_fewer_bytes_than_full_decode() {
    // acceptance criterion: on a multi-field dataset ≥ 4 chunks long,
    // random access must touch fewer bytes while matching decode_all
    let bytes = fixture("small_v2.cfar");

    fn count_with<T>(
        bytes: &[u8],
        f: impl FnOnce(&ArchiveReader<CountingReader<std::io::Cursor<Vec<u8>>>>) -> T,
    ) -> (T, u64, u64) {
        let read = Arc::new(AtomicU64::new(0));
        let src = CountingReader {
            inner: std::io::Cursor::new(bytes.to_vec()),
            read: Arc::clone(&read),
        };
        let reader = ArchiveReader::open(src).expect("parse");
        let parsed = read.load(Ordering::Relaxed); // TOC cost, shared by both
        let out = f(&reader);
        (out, read.load(Ordering::Relaxed), parsed)
    }

    let (full, full_bytes, _) = count_with(&bytes, |r| {
        let dec = r.decode_all().expect("decode_all");
        (
            dec.expect_field("T").clone(),
            dec.expect_field("RH").clone(),
        )
    });
    let (full_t, full_rh) = full;

    let region = Region::d2(9, 15, 4, 28); // block 1 (rows 8..16) only

    // cross-field target: reads its block + the matching anchor blocks +
    // the field meta (embedded model) — strictly fewer bytes than a full
    // decode, and the same samples
    let (rh_region, rh_bytes, _) = count_with(&bytes, |r| {
        r.decode_region("RH", &region).expect("decode_region RH")
    });
    assert!(
        rh_bytes < full_bytes,
        "target region decode read {rh_bytes} bytes, full decode {full_bytes}"
    );
    assert_eq!(
        rh_region,
        full_rh.crop(&region),
        "random-access decode must match the full decode exactly"
    );

    // baseline field: one block out of twelve, no meta — the payload
    // traffic collapses to a small fraction of the full decode
    let (t_region, t_bytes, parsed) = count_with(&bytes, |r| {
        r.decode_region("T", &region).expect("decode_region T")
    });
    assert!(
        t_bytes.saturating_sub(parsed) * 4 < full_bytes.saturating_sub(parsed),
        "baseline random access should touch well under a quarter of the \
         payload ({t_bytes} vs {full_bytes}, TOC {parsed})"
    );
    assert_eq!(t_region, full_t.crop(&region));
}
