//! Property tests of the lossless building blocks: LZSS round-trip identity
//! on arbitrary byte streams and Huffman round-trip on arbitrary symbol
//! streams — the invariants the residual pipeline relies on.

use proptest::prelude::*;

use cross_field_compression::sz::huffman::HuffmanTable;
use cross_field_compression::sz::{compressor, lossless};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// decompress(compress(x)) == x for arbitrary bytes.
    #[test]
    fn lzss_roundtrip_identity(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(lossless::decompress(&lossless::compress(&data)), data);
    }

    /// Same with repetitive structure (exercises the match path heavily).
    #[test]
    fn lzss_roundtrip_repetitive(
        unit in prop::collection::vec(any::<u8>(), 1..16),
        reps in 1usize..600,
        tail in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).cloned().collect();
        data.extend(tail);
        prop_assert_eq!(lossless::decompress(&lossless::compress(&data)), data);
    }

    /// Huffman round-trip on arbitrary bounded symbol streams.
    #[test]
    fn huffman_roundtrip(symbols in prop::collection::vec(0u32..1025, 1..4096)) {
        let table = HuffmanTable::from_symbols(&symbols);
        let bits = table.encode(&symbols);
        prop_assert_eq!(table.decode(&bits, symbols.len()), symbols);
    }

    /// Huffman table survives serialization.
    #[test]
    fn huffman_table_serde(symbols in prop::collection::vec(0u32..100_000, 1..512)) {
        let table = HuffmanTable::from_symbols(&symbols);
        let (table2, _) = HuffmanTable::deserialize(&table.serialize());
        let bits = table.encode(&symbols);
        prop_assert_eq!(table2.decode(&bits, symbols.len()), symbols);
    }

    /// Outlier varint coding round-trips arbitrary i64s.
    #[test]
    fn outlier_roundtrip(vals in prop::collection::vec(any::<i64>(), 0..512)) {
        let bytes = compressor::encode_outliers(&vals);
        prop_assert_eq!(compressor::decode_outliers(&bytes), vals);
    }

    /// Residual code coding round-trips (Huffman + LZSS composition).
    #[test]
    fn code_stream_roundtrip(codes in prop::collection::vec(0u32..1025, 1..2048)) {
        let bytes = compressor::encode_codes(&codes);
        prop_assert_eq!(compressor::decode_codes(&bytes, codes.len()), codes);
    }
}
