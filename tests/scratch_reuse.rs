//! Scratch-buffer reuse: repeated decodes through one scratch are
//! deterministic, and — the perf contract — steady-state block processing
//! performs no new allocations in the reusable code/outlier/payload/byte
//! buffers (asserted via the scratch types' capacity-growth counters).

use cross_field_compression::core::archive::{ArchiveBuilder, ArchiveReader, ArchiveScratch};
use cross_field_compression::sz::{DecodeScratch, EncodeScratch, SzCompressor};
use cross_field_compression::tensor::{Dataset, Field, Shape};
use cross_field_compression::Codec;

fn snapshot(rows: usize, cols: usize) -> Dataset {
    let shape = Shape::d2(rows, cols);
    let t = Field::from_fn(shape, |i| {
        ((i[0] as f32) * 0.13).sin() * 15.0 + ((i[1] as f32) * 0.09).cos() * 9.0 + 280.0
    });
    let p = Field::from_fn(shape, |i| {
        1000.0 - (i[0] as f32) * 0.8 + ((i[1] as f32) * 0.05).sin() * 3.0
    });
    let mut ds = Dataset::new("SCRATCH", shape);
    ds.push("T", t);
    ds.push("P", p);
    ds
}

#[test]
fn codec_scratch_decode_is_deterministic_and_allocation_free() {
    let f = Field::from_fn(Shape::d2(96, 96), |i| {
        ((i[0] as f32) * 0.2).sin() * 40.0 + (i[1] as f32) * 0.3
    });
    let c = SzCompressor::baseline(1e-3);
    let stream = c.compress(&f).unwrap();

    let mut scratch = DecodeScratch::new();
    let first = c.decompress_with(&stream.bytes, &mut scratch).unwrap();
    assert_eq!(
        first.as_slice(),
        c.decompress(&stream.bytes).unwrap().as_slice()
    );

    // steady state: same stream through the warmed scratch grows nothing
    let warmed = scratch.growths();
    for _ in 0..5 {
        let again = c.decompress_with(&stream.bytes, &mut scratch).unwrap();
        assert_eq!(again.as_slice(), first.as_slice());
    }
    assert_eq!(
        scratch.growths(),
        warmed,
        "steady-state decode must not grow the scratch buffers"
    );
}

#[test]
fn codec_scratch_encode_matches_plain_compress() {
    let f = Field::from_fn(Shape::d2(80, 64), |i| {
        (i[0] as f32) * 0.5 - ((i[1] as f32) * 0.11).cos() * 7.0
    });
    let c = SzCompressor::baseline(1e-3);
    let plain = c.compress(&f).unwrap();

    let mut scratch = EncodeScratch::new();
    let first = c.compress_with(&f, &mut scratch).unwrap();
    assert_eq!(
        first.bytes, plain.bytes,
        "scratch must not change the bytes"
    );
    assert_eq!(first.n_outliers, plain.n_outliers);

    let warmed = scratch.growths();
    for _ in 0..5 {
        let again = c.compress_with(&f, &mut scratch).unwrap();
        assert_eq!(again.bytes, plain.bytes);
    }
    assert_eq!(
        scratch.growths(),
        warmed,
        "steady-state encode must not grow the scratch buffers"
    );
}

#[test]
fn archive_decodes_identically_through_one_reader_twice() {
    let ds = snapshot(48, 40);
    let bytes = ArchiveBuilder::relative(1e-3)
        .chunk_elements(8 * 40)
        .build()
        .write(&ds)
        .unwrap();
    let reader = ArchiveReader::new(&bytes).unwrap();
    let once = reader.decode_all().unwrap();
    let twice = reader.decode_all().unwrap();
    assert_eq!(once.field_names(), twice.field_names());
    for (name, field) in once.iter() {
        assert_eq!(
            field.as_slice(),
            twice.expect_field(name).as_slice(),
            "second decode of {name} differs"
        );
    }
}

#[test]
fn steady_state_block_decode_reuses_buffers() {
    let ds = snapshot(60, 40);
    let bytes = ArchiveBuilder::relative(1e-3)
        .chunk_elements(6 * 40) // 10 equal blocks
        .build()
        .write(&ds)
        .unwrap();
    let reader = ArchiveReader::new(&bytes).unwrap();
    let full = reader.decode_field("T").unwrap();

    let mut scratch = ArchiveScratch::new();
    // warm pass: buffers grow to their steady-state capacity
    let n_blocks = reader.entries()[0].n_blocks();
    for bi in 0..n_blocks {
        reader.decode_block_with("T", bi, &mut scratch).unwrap();
    }
    let warmed = scratch.growths();
    assert!(warmed > 0, "the warm pass must have allocated something");

    // steady state: a second full pass over every block allocates nothing
    // new in the scratch, and still decodes the exact same samples
    for bi in 0..n_blocks {
        let block = reader.decode_block_with("T", bi, &mut scratch).unwrap();
        assert_eq!(
            block.as_slice(),
            full.slab(bi * 6, ((bi + 1) * 6).min(60)).as_slice(),
            "block {bi} drifted under scratch reuse"
        );
    }
    assert_eq!(
        scratch.growths(),
        warmed,
        "steady-state block decode must not grow any scratch buffer"
    );
}

/// Property sweep over the batched encode pipeline: random skewed /
/// uniform / wide symbol streams through word-level Huffman emission and
/// the reusable scratch chain, checked for byte identity with the
/// allocating path, round-trip equality against the bit-serial reference
/// decoder, and zero steady-state scratch growth.
mod encode_sweep {
    use cross_field_compression::sz::compressor::{
        encode_codes, encode_codes_into, try_decode_codes,
    };
    use cross_field_compression::sz::huffman::HuffmanTable;
    use cross_field_compression::sz::lossless;
    use cross_field_compression::sz::{EncodeScratch, SzCompressor};
    use cross_field_compression::tensor::{Field, Shape};
    use cross_field_compression::Codec;
    use proptest::prelude::*;

    /// Shape a raw arbitrary stream into one of three regimes: skewed
    /// (mass at one centre code, the shape Lorenzo residuals produce),
    /// uniform over a small alphabet (defeats multi-symbol packing), and
    /// wide arbitrary values (stress the table header and escape paths).
    fn shape_stream(raw: &[u32], regime: usize, centre: u32, every: usize) -> Vec<u32> {
        match regime {
            0 => raw
                .iter()
                .enumerate()
                .map(|(k, &s)| if k % every == 0 { s % 1025 } else { centre })
                .collect(),
            1 => raw.iter().map(|&s| s % 17).collect(),
            _ => raw.to_vec(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Batched emission through a reused scratch: identical bytes to
        /// the allocating path, exact round trip through both the fast
        /// decoder and the bit-serial reference, and no staging-buffer
        /// regrowth once warm.
        #[test]
        fn batched_emission_round_trips_through_reused_scratch(
            raw in prop::collection::vec(any::<u32>(), 64..2048),
            regime in 0usize..3,
            centre in 0u32..1025,
            every in 2usize..24,
        ) {
            let symbols = shape_stream(&raw, regime, centre, every);
            let mut payload = Vec::new();
            let mut lz = lossless::LzScratch::new();

            let bytes = encode_codes_into(&symbols, &mut payload, &mut lz);
            // the scratch path must not change the wire bytes
            prop_assert_eq!(&bytes, &encode_codes(&symbols));

            let fast = try_decode_codes(&bytes, symbols.len()).expect("valid section");
            prop_assert_eq!(&fast, &symbols);

            // differential against the bit-serial reference decoder
            let staged = lossless::try_decompress(&bytes).expect("lossless layer");
            let (table, used) = HuffmanTable::try_deserialize(&staged).expect("table header");
            let slow = table
                .try_decode_reference(&staged[used..], symbols.len())
                .expect("reference decode");
            prop_assert_eq!(&slow, &symbols);

            // steady state: re-encoding the same stream grows nothing
            let cap = payload.capacity();
            for _ in 0..3 {
                let again = encode_codes_into(&symbols, &mut payload, &mut lz);
                prop_assert_eq!(&again, &bytes);
            }
            // steady-state emission must not regrow the staging buffer
            prop_assert_eq!(payload.capacity(), cap);
        }

        /// The whole encode chain (predict → quantize → emit → LZ) through
        /// `EncodeScratch`: random sample data stays byte-identical to the
        /// plain path, with zero growth counters at steady state.
        #[test]
        fn full_encode_chain_is_allocation_free_at_steady_state(
            samples in prop::collection::vec(-1000.0f32..1000.0, 256..2048),
            rows in 2usize..8,
        ) {
            // 256 samples over at most 7 rows keeps cols well above 2
            let cols = samples.len() / rows;
            let field = Field::from_fn(Shape::d2(rows, cols), |i| samples[i[0] * cols + i[1]]);
            let c = SzCompressor::baseline(1e-3);
            let plain = c.compress(&field).unwrap();

            let mut scratch = EncodeScratch::new();
            let first = c.compress_with(&field, &mut scratch).unwrap();
            prop_assert_eq!(&first.bytes, &plain.bytes);

            let warmed = scratch.growths();
            for _ in 0..3 {
                let again = c.compress_with(&field, &mut scratch).unwrap();
                prop_assert_eq!(&again.bytes, &plain.bytes);
            }
            // steady-state encode must not grow any scratch buffer
            prop_assert_eq!(scratch.growths(), warmed);
        }
    }
}

#[test]
fn scratch_and_fresh_block_decodes_agree() {
    let ds = snapshot(36, 24);
    let bytes = ArchiveBuilder::relative(1e-3)
        .chunk_elements(6 * 24)
        .build()
        .write(&ds)
        .unwrap();
    let reader = ArchiveReader::new(&bytes).unwrap();
    let mut scratch = ArchiveScratch::new();
    for name in ["T", "P"] {
        for bi in 0..reader.entries()[0].n_blocks() {
            let fresh = reader.decode_block(name, bi).unwrap();
            let reused = reader.decode_block_with(name, bi, &mut scratch).unwrap();
            assert_eq!(fresh, reused, "{name} block {bi}");
        }
    }
}
