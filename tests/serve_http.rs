//! End-to-end HTTP tests for `cfc-serve`: a real `ArchiveServer` on an
//! ephemeral port, hammered over real sockets.
//!
//! * region and block bytes fetched over HTTP must be **bit-identical**
//!   to direct `ArchiveStore::decode_region` / `decode_block` output,
//!   from 8 concurrent client threads on keep-alive connections;
//! * the error surface is typed: `404` for unknown fields and
//!   out-of-range blocks, `422` for unsatisfiable regions, `400` for
//!   malformed queries, `405` for non-GET methods;
//! * `/fields` and `/stats` expose the manifest and consistent counters;
//! * shutdown is clean: every server thread joins, the port stops
//!   accepting, and a server dropped mid-traffic does not hang.

use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use cross_field_compression::core::archive::{
    ArchiveBuilder, ArchiveReader, ArchiveStore, FaultInjectingReader, FaultPlan, SeekSource,
    StoreConfig,
};
use cross_field_compression::core::TrainConfig;
use cross_field_compression::tensor::{Dataset, Field, Region, Shape};

use cfc_serve::{ArchiveServer, HttpClient, ServeConfig};

const ROWS: usize = 96;
const COLS: usize = 64;
const CHUNK_ROWS: usize = 16;

/// Coupled three-field snapshot (T, P anchors; RH a cross-field target)
/// so the serving path exercises anchor-block decodes too.
fn snapshot() -> Dataset {
    let shape = Shape::d2(ROWS, COLS);
    let t = Field::from_fn(shape, |i| {
        ((i[0] as f32) * 0.13).sin() * 11.0 + ((i[1] as f32) * 0.05).cos() * 7.0 + 284.0
    });
    let p = Field::from_fn(shape, |i| {
        1011.0 - (i[0] as f32) * 0.4 + ((i[1] as f32) * 0.06).sin() * 3.0
    });
    let rh = t.zip_map(&p, |tv, pv| {
        0.5 * (tv - 284.0) + 0.05 * (pv - 1011.0) + 50.0
    });
    let mut ds = Dataset::new("SERVE-TEST", shape);
    ds.push("T", t);
    ds.push("P", p);
    ds.push("RH", rh);
    ds
}

/// Encode once per process (the write side trains a CFNN — the expensive
/// part); every test serves its own store over the shared bytes.
fn archive_bytes() -> Vec<u8> {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES
        .get_or_init(|| {
            ArchiveBuilder::relative(1e-3)
                .train_config(TrainConfig::fast())
                .cross_field("RH", &["T", "P"])
                .chunk_elements(CHUNK_ROWS * COLS)
                .build()
                .write(&snapshot())
                .expect("write test archive")
        })
        .clone()
}

fn store() -> ArchiveStore<Cursor<Vec<u8>>> {
    ArchiveStore::open(Cursor::new(archive_bytes()), StoreConfig::default()).expect("parse")
}

fn test_config() -> ServeConfig {
    ServeConfig {
        read_timeout: Duration::from_millis(500),
        ..ServeConfig::with_threads(4)
    }
}

#[test]
fn concurrent_clients_get_byte_identical_regions() {
    let reference = Arc::new(store());
    let server = ArchiveServer::bind(store(), "127.0.0.1:0", test_config()).expect("bind");
    let addr = server.local_addr();

    std::thread::scope(|s| {
        for ti in 0..8usize {
            let reference = Arc::clone(&reference);
            s.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                for it in 0..12usize {
                    let name = ["T", "P", "RH"][(ti + it) % 3];
                    let r0 = (ti * 7 + it * 11) % (ROWS - 20);
                    let c0 = (ti * 5 + it * 3) % (COLS - 16);
                    let (h, w) = (20, 16);
                    let resp = client
                        .get(&format!(
                            "/field/{name}/region?start={r0},{c0}&shape={h},{w}"
                        ))
                        .expect("region request");
                    assert_eq!(resp.status, 200, "body: {}", resp.body_str());
                    let (header, payload) = resp.frame().expect("frame body");
                    assert!(
                        header.contains(&format!("\"field\": \"{name}\"")),
                        "{header}"
                    );
                    assert!(
                        header.contains(&format!("\"shape\": [{h}, {w}]")),
                        "{header}"
                    );
                    let want = reference
                        .decode_region(name, &Region::d2(r0, r0 + h, c0, c0 + w))
                        .expect("direct decode");
                    let want_bytes: Vec<u8> = want
                        .as_slice()
                        .iter()
                        .flat_map(|v| v.to_le_bytes())
                        .collect();
                    assert_eq!(payload, want_bytes, "thread {ti} iter {it}: {name}");
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.region, 8 * 12);
    assert_eq!(stats.connections, 8);
    assert_eq!(stats.errors, 0);
}

#[test]
fn block_endpoint_matches_direct_decode() {
    let reference = store();
    let server = ArchiveServer::bind(store(), "127.0.0.1:0", test_config()).expect("bind");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    let n_blocks = reference.field_info("RH").unwrap().n_blocks;
    assert!(n_blocks > 1, "test archive must be chunked");
    for idx in 0..n_blocks {
        let resp = client
            .get(&format!("/field/RH/block/{idx}"))
            .expect("block request");
        assert_eq!(resp.status, 200, "body: {}", resp.body_str());
        let got = resp.payload_f32().expect("frame payload");
        let want = reference.decode_block("RH", idx).expect("direct decode");
        assert_eq!(got.len(), want.len());
        assert!(
            got.iter()
                .zip(want.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "block {idx} bytes differ"
        );
    }
}

#[test]
fn typed_error_statuses() {
    let server = ArchiveServer::bind(store(), "127.0.0.1:0", test_config()).expect("bind");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");

    // unknown field → 404 (region, block, and the field prefix itself)
    for target in [
        "/field/NOPE/region?start=0,0&shape=4,4",
        "/field/NOPE/block/0",
    ] {
        let resp = client.get(target).expect("request");
        assert_eq!(resp.status, 404, "{target}: {}", resp.body_str());
        assert!(resp.body_str().contains("no field"), "{}", resp.body_str());
    }
    // out-of-range block index → 404
    let resp = client.get("/field/RH/block/9999").expect("request");
    assert_eq!(resp.status, 404);
    // region out of bounds / wrong rank for the field → 422
    for target in [
        "/field/RH/region?start=90,0&shape=20,64",
        "/field/RH/region?start=0,0,0&shape=4,4,4",
    ] {
        let resp = client.get(target).expect("request");
        assert_eq!(resp.status, 422, "{target}: {}", resp.body_str());
    }
    // malformed query grammar → 400
    for target in [
        "/field/RH/region?start=a,b&shape=4,4",
        "/field/RH/region?start=0,0",
        "/field/RH/region?start=0,0&shape=4,0",
        "/field/RH/block/notanumber",
    ] {
        let resp = client.get(target).expect("request");
        assert_eq!(resp.status, 400, "{target}: {}", resp.body_str());
    }
    // unknown route → 404, wrong method → 405
    assert_eq!(client.get("/no/such/route").expect("request").status, 404);
    {
        let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
        raw.write_all(b"POST /fields HTTP/1.1\r\n\r\n").unwrap();
        let mut text = String::new();
        raw.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 405"), "{text}");
    }
    let stats = server.stats();
    assert!(stats.errors >= 10, "{stats:?}");
}

#[test]
fn fields_stats_and_healthz_endpoints() {
    let server = ArchiveServer::bind(store(), "127.0.0.1:0", test_config()).expect("bind");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");

    let resp = client.get("/healthz").expect("healthz");
    assert_eq!(resp.status, 200);
    assert!(resp.body_str().contains("ok"));

    let manifest = client.get("/fields").expect("fields").body_str();
    assert!(
        manifest.contains("\"archive\": \"SERVE-TEST\""),
        "{manifest}"
    );
    for (name, role) in [("T", "anchor"), ("P", "anchor"), ("RH", "cross-field")] {
        assert!(
            manifest.contains(&format!("\"name\": \"{name}\", \"role\": \"{role}\"")),
            "{manifest}"
        );
    }
    assert!(
        manifest.contains(&format!("\"shape\": [{ROWS}, {COLS}]")),
        "{manifest}"
    );
    assert!(
        manifest.contains("\"anchors\": [\"T\", \"P\"]"),
        "{manifest}"
    );

    // warm a region, then check the stats surface
    client
        .get("/field/RH/region?start=0,0&shape=16,64")
        .expect("warm");
    client
        .get("/field/RH/region?start=0,0&shape=16,64")
        .expect("hit");
    let stats = client.get("/stats").expect("stats").body_str();
    for key in [
        "\"uptime_secs\"",
        "\"connections\"",
        "\"rejected_saturated\"",
        "\"region\": 2",
        "\"hits\"",
        "\"hit_rate\"",
    ] {
        assert!(stats.contains(key), "missing {key} in {stats}");
    }
}

#[test]
fn stats_schema_is_pinned() {
    let server = ArchiveServer::bind(store(), "127.0.0.1:0", test_config()).expect("bind");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    let stats = client.get("/stats").expect("stats").body_str();
    for key in [
        "uptime_secs",
        "connections",
        "rejected_saturated",
        "fields",
        "region",
        "block",
        "stats",
        "healthz",
        "errors",
        "panics",
        "hits",
        "misses",
        "coalesced",
        "insertions",
        "evictions",
        "cached_blocks",
        "cached_bytes",
        "capacity_bytes",
        "hit_rate",
        "retries",
        "salvaged_blocks",
        "tier2_hits",
        "tier2_insertions",
        "tier2_evictions",
        "tier2_blocks",
        "tier2_bytes",
        "tier2_capacity_bytes",
        "demotions",
        "promotions",
        "prefetch_issued",
        "prefetched_blocks",
        "prefetch_hits",
        "negative_hits",
    ] {
        assert!(
            stats.contains(&format!("\"{key}\"")),
            "missing key {key} in {stats}"
        );
    }
}

/// One corrupt block: strict region requests answer a typed `500` naming
/// the field, salvage-mode requests answer `200` with the healthy blocks
/// byte-identical, the damaged block filled, and the damage advertised in
/// both the frame header and the `X-Cfc-Damage` response header — and the
/// server keeps serving afterwards.
#[test]
fn salvage_mode_serves_damaged_archives() {
    let mut bytes = archive_bytes();
    let reader = ArchiveReader::new(&bytes).expect("open");
    let rh = reader
        .entries()
        .iter()
        .position(|e| e.name == "RH")
        .expect("RH entry");
    let (off, len) = reader.entries()[rh].block_span(0).expect("span");
    bytes[off as usize + len / 2] ^= 0x40;

    let reference = store(); // the clean archive, for expected bytes
    let damaged =
        ArchiveStore::open(Cursor::new(bytes), StoreConfig::default()).expect("parse damaged");
    let server = ArchiveServer::bind(damaged, "127.0.0.1:0", test_config()).expect("bind");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");

    let resp = client
        .get("/field/RH/region?start=0,0&shape=32,64")
        .expect("strict request");
    assert_eq!(resp.status, 500, "{}", resp.body_str());
    assert!(resp.body_str().contains("RH"), "{}", resp.body_str());
    assert!(resp.damage().is_none());

    let resp = client
        .get("/field/RH/region?start=0,0&shape=32,64&mode=salvage&fill=-7")
        .expect("salvage request");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert_eq!(resp.damage(), Some("RH:0"));
    let (header, _) = resp.frame().expect("frame body");
    assert!(header.contains("\"damage\": \"RH:0\""), "{header}");
    let got = resp.payload_f32().expect("payload");
    let want = reference
        .decode_region("RH", &Region::d2(0, 32, 0, 64))
        .expect("clean decode");
    let block_len = CHUNK_ROWS * COLS;
    assert!(
        got[..block_len].iter().all(|&v| v == -7.0),
        "damaged block must be pure fill"
    );
    assert!(
        got[block_len..]
            .iter()
            .zip(&want.as_slice()[block_len..])
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "healthy block must be byte-identical to the clean decode"
    );

    // a healthy salvage request advertises no damage but keeps the key
    let resp = client
        .get("/field/T/region?start=0,0&shape=16,64&mode=salvage")
        .expect("healthy salvage");
    assert_eq!(resp.status, 200);
    assert!(resp.damage().is_none());
    assert!(resp.frame().unwrap().0.contains("\"damage\": \"\""));

    assert_eq!(client.get("/healthz").expect("alive").status, 200);
}

/// A panic inside the decode path answers that one request `500`, bumps
/// the `panics` counter, closes the connection — and the worker thread
/// survives to serve fresh connections.
#[test]
fn worker_survives_handler_panic() {
    let bytes = archive_bytes();
    let reader = ArchiveReader::new(&bytes).expect("open");
    let ti = reader
        .entries()
        .iter()
        .position(|e| e.name == "T")
        .expect("T entry");
    let (off, len) = reader.entries()[ti].block_span(1).expect("span");
    let plan = FaultPlan::new().panic_at(off..off + len as u64);
    let faulty = SeekSource::new(FaultInjectingReader::new(Cursor::new(bytes), plan));
    let store = ArchiveStore::open(faulty, StoreConfig::default()).expect("parse");
    let server = ArchiveServer::bind(store, "127.0.0.1:0", test_config()).expect("bind");
    let addr = server.local_addr();

    let mut client = HttpClient::connect(addr).expect("connect");
    let resp = client
        .get(&format!(
            "/field/T/region?start={CHUNK_ROWS},0&shape={CHUNK_ROWS},{COLS}"
        ))
        .expect("panicking request still gets a response");
    assert_eq!(resp.status, 500, "{}", resp.body_str());
    assert!(resp.body_str().contains("panic"), "{}", resp.body_str());
    assert_eq!(resp.header("connection"), Some("close"));

    let mut client = HttpClient::connect(addr).expect("reconnect");
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    let stats = client.get("/stats").expect("stats").body_str();
    assert!(stats.contains("\"panics\": 1"), "{stats}");
    assert_eq!(server.stats().panics, 1);
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = ArchiveServer::bind(store(), "127.0.0.1:0", test_config()).expect("bind");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    for _ in 0..32 {
        let resp = client.get("/healthz").expect("keep-alive request");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("keep-alive"));
    }
    let stats = server.stats();
    assert_eq!(stats.healthz, 32);
    assert_eq!(stats.connections, 1, "one keep-alive connection expected");
}

#[test]
fn shutdown_is_clean_and_joins_all_threads() {
    let mut server = ArchiveServer::bind(store(), "127.0.0.1:0", test_config()).expect("bind");
    let addr = server.local_addr();
    // in-flight traffic right up to shutdown
    let mut client = HttpClient::connect(addr).expect("connect");
    for _ in 0..4 {
        assert_eq!(client.get("/healthz").expect("request").status, 200);
    }
    drop(client);
    server.shutdown(); // joins acceptor + workers; must not hang
    server.shutdown(); // idempotent

    // the listener is gone: a fresh connection must fail or be dropped
    // without a response
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = Vec::new();
            let n = s.read_to_end(&mut buf).map(|_| buf.len()).unwrap_or(0);
            assert_eq!(
                n,
                0,
                "served after shutdown: {:?}",
                String::from_utf8_lossy(&buf)
            );
        }
    }
}

#[test]
fn server_drop_mid_traffic_does_not_hang() {
    let server = ArchiveServer::bind(store(), "127.0.0.1:0", test_config()).expect("bind");
    let addr = server.local_addr();
    let mut client = HttpClient::connect(addr).expect("connect");
    assert_eq!(client.get("/fields").expect("request").status, 200);
    drop(server); // graceful: drains and joins via Drop
                  // the kept-alive client connection is closed by the draining worker
    client.set_timeout(Some(Duration::from_secs(2))).unwrap();
    assert!(
        client.get("/fields").is_err(),
        "connection should be closed"
    );
}
