//! Concurrency and equivalence tests for `ArchiveStore`:
//!
//! * N threads hammering `decode_region` over pseudo-random regions must
//!   byte-match the single-threaded `decode_all`, under a cold cache, a
//!   warm cache, and a cache so small it thrashes;
//! * a proptest asserting cache-on and cache-off stores decode identically
//!   for arbitrary shapes, chunkings, and regions;
//! * the v1 golden fixture served through the store matches its direct
//!   reader decode.

use std::sync::Arc;

use proptest::prelude::*;

use cross_field_compression::core::archive::{
    ArchiveBuilder, ArchiveReader, ArchiveStore, StoreConfig,
};
use cross_field_compression::core::TrainConfig;
use cross_field_compression::tensor::{Dataset, Field, Region, Shape};

/// Coupled three-field snapshot (T, P anchors; RH a cross-field target).
fn snapshot(rows: usize, cols: usize) -> Dataset {
    let shape = Shape::d2(rows, cols);
    let t = Field::from_fn(shape, |i| {
        ((i[0] as f32) * 0.11).sin() * 12.0 + ((i[1] as f32) * 0.07).cos() * 8.0 + 285.0
    });
    let p = Field::from_fn(shape, |i| {
        1013.0 - (i[0] as f32) * 0.6 + ((i[1] as f32) * 0.04).sin() * 2.5
    });
    let rh = t.zip_map(&p, |tv, pv| {
        0.5 * (tv - 285.0) + 0.04 * (pv - 1013.0) + 55.0
    });
    let mut ds = Dataset::new("CONC", shape);
    ds.push("T", t);
    ds.push("P", p);
    ds.push("RH", rh);
    ds
}

fn cross_field_archive(rows: usize, cols: usize, chunk_rows: usize) -> Vec<u8> {
    ArchiveBuilder::relative(1e-3)
        .train_config(TrainConfig::fast())
        .cross_field("RH", &["T", "P"])
        .chunk_elements(chunk_rows * cols)
        .build()
        .write(&snapshot(rows, cols))
        .expect("write")
}

use cfc_bench::rng::XorShift;

/// Hammer `store.decode_region` from `n_threads` threads with
/// pseudo-random regions over every field, asserting every result
/// byte-matches the reference decode.
fn hammer(store: &Arc<ArchiveStore<std::io::Cursor<Vec<u8>>>>, reference: &Dataset, seed: u64) {
    let shape = reference.shape();
    let (rows, cols) = (shape.dims()[0], shape.dims()[1]);
    let n_threads = 8;
    let iters = 24;
    std::thread::scope(|s| {
        for ti in 0..n_threads {
            let store = Arc::clone(store);
            s.spawn(move || {
                let mut rng = XorShift(seed ^ (0x9E37_79B9 + ti as u64));
                for it in 0..iters {
                    let name = ["T", "P", "RH"][(ti + it) % 3];
                    let (r0, r1) = rng.range(rows);
                    let (c0, c1) = rng.range(cols);
                    let region = Region::d2(r0, r1, c0, c1);
                    let got = store
                        .decode_region(name, &region)
                        .unwrap_or_else(|e| panic!("decode_region {name} {region}: {e}"));
                    let want = reference.expect_field(name).crop(&region);
                    assert_eq!(got, want, "thread {ti} iter {it}: {name} {region}");
                }
            });
        }
    });
}

#[test]
fn hammered_store_matches_decode_all_cold_and_warm() {
    let bytes = cross_field_archive(48, 32, 7);
    let reference = ArchiveReader::new(&bytes)
        .unwrap()
        .decode_all_with_threads(1)
        .unwrap();

    let store = Arc::new(ArchiveStore::new(
        ArchiveReader::new(&bytes).unwrap(),
        StoreConfig::default(),
    ));
    // cold: first pass populates the cache under contention
    hammer(&store, &reference, 1);
    let cold = store.stats();
    assert!(cold.misses > 0);
    // warm: the whole archive fits the default budget, so a second pass
    // must serve entirely from cache — not a single new decode
    hammer(&store, &reference, 2);
    let warm = store.stats();
    assert_eq!(warm.misses, cold.misses, "warm pass must not decode");
    assert!(warm.hits > cold.hits);
}

#[test]
fn hammered_store_matches_under_eviction_pressure() {
    let bytes = cross_field_archive(48, 32, 7);
    let reference = ArchiveReader::new(&bytes)
        .unwrap()
        .decode_all_with_threads(1)
        .unwrap();
    // budget of ~2 blocks (7×32 f32 = 896 B each): constant thrash, same bytes
    let store = Arc::new(ArchiveStore::new(
        ArchiveReader::new(&bytes).unwrap(),
        StoreConfig::with_capacity(2 * 7 * 32 * 4),
    ));
    hammer(&store, &reference, 3);
    let stats = store.stats();
    assert!(stats.evictions > 0, "tiny budget must evict: {stats:?}");
    assert!(
        stats.cached_bytes <= stats.capacity_bytes,
        "budget violated: {stats:?}"
    );
}

/// 8 threads over a working set far larger than the tier-1 budget, with
/// tier 2 and prefetch on: every decoded byte must still match the
/// reference, tier 2 must actually absorb the tier-1 churn (demotions and
/// tier-2 hits), and the cross-tier counter invariants must hold — a
/// tier-2 hit only happens on a demand miss, and speculative decodes are
/// accounted separately from demand misses.
#[test]
fn hammered_tiered_store_matches_under_eviction_pressure() {
    let bytes = cross_field_archive(48, 32, 7);
    let reference = ArchiveReader::new(&bytes)
        .unwrap()
        .decode_all_with_threads(1)
        .unwrap();
    // tier 1 holds ~2 of the 21 blocks (7×32 f32 = 896 B each); tier 2 is
    // big enough for every compressed payload, so steady state is pure
    // demote/promote traffic
    let store = Arc::new(ArchiveStore::new(
        ArchiveReader::new(&bytes).unwrap(),
        StoreConfig::with_tiers(2 * 7 * 32 * 4, 1 << 20),
    ));
    hammer(&store, &reference, 5);
    store.prefetch_quiesce();
    let stats = store.stats();
    assert!(stats.evictions > 0, "tiny tier 1 must evict: {stats:?}");
    assert!(
        stats.demotions > 0,
        "evictions with resident tier-2 bytes must demote: {stats:?}"
    );
    assert!(
        stats.tier2_hits > 0,
        "re-reads after eviction must hit tier 2: {stats:?}"
    );
    assert!(
        stats.tier2_hits <= stats.misses,
        "tier-2 hits only happen on demand misses: {stats:?}"
    );
    assert!(
        stats.insertions <= stats.misses + stats.prefetched_blocks,
        "inserts come only from demand misses or prefetch: {stats:?}"
    );
    assert!(
        stats.cached_bytes <= stats.capacity_bytes
            && stats.tier2_bytes <= stats.tier2_capacity_bytes,
        "budgets violated: {stats:?}"
    );
}

/// `snapshot()` must be internally consistent at every instant, even with
/// decoders racing it under eviction pressure: all counters are captured
/// under one lock, so `cached_blocks == insertions - evictions`,
/// `insertions <= misses + prefetched_blocks` (every insert comes from a
/// demand miss or a prefetch decode), `tier2_hits <= misses`, and the hit
/// rate can never exceed 1 — a half-applied update (e.g. a miss counted
/// but its insertion not yet, read through independent atomics) would
/// trip these.
#[test]
fn stats_snapshot_is_consistent_under_concurrent_load() {
    let bytes = cross_field_archive(48, 32, 7);
    // ~2-block budget: constant insert/evict churn while we snapshot
    let store = Arc::new(ArchiveStore::new(
        ArchiveReader::new(&bytes).unwrap(),
        StoreConfig::with_capacity(2 * 7 * 32 * 4),
    ));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        for ti in 0..4u64 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut rng = XorShift(0xFEED_F00D ^ ti);
                for it in 0.. {
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    let name = ["T", "P", "RH"][(it as usize + ti as usize) % 3];
                    let (r0, r1) = rng.range(48);
                    let region = Region::d2(r0, r1, 0, 32);
                    store.decode_region(name, &region).expect("decode");
                }
            });
        }
        for _ in 0..2000 {
            let snap = store.snapshot();
            assert_eq!(
                snap.cached_blocks as u64,
                snap.insertions - snap.evictions,
                "inconsistent snapshot: {snap:?}"
            );
            assert!(
                snap.insertions <= snap.misses + snap.prefetched_blocks,
                "insertion without a miss or prefetch: {snap:?}"
            );
            assert!(
                snap.tier2_hits <= snap.misses,
                "tier-2 hit without a demand miss: {snap:?}"
            );
            assert!(snap.hits <= snap.lookups(), "hits exceed lookups: {snap:?}");
            assert!(snap.hit_rate() <= 1.0);
            assert!(
                snap.cached_bytes <= snap.capacity_bytes,
                "tier-1 budget violated: {snap:?}"
            );
            assert!(
                snap.tier2_bytes <= snap.tier2_capacity_bytes,
                "tier-2 budget violated: {snap:?}"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let end = store.snapshot();
    assert!(end.evictions > 0, "churn expected: {end:?}");
    assert_eq!(end.cached_blocks as u64, end.insertions - end.evictions);
}

#[test]
fn store_serves_v1_golden_fixture() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("small_v1.cfar");
    let bytes = std::fs::read(&path).expect("golden v1 fixture");
    let reference = ArchiveReader::new(&bytes).unwrap().decode_all().unwrap();
    let store = ArchiveStore::new(ArchiveReader::new(&bytes).unwrap(), StoreConfig::default());
    for e in store.reader().entries() {
        let name = e.name.clone();
        let full = store.decode_field(&name).unwrap();
        assert_eq!(&full, reference.expect_field(&name), "{name}");
        // v1 random access degrades to cached whole-field decode + crop
        let shape = full.shape();
        let region = Region::full(shape);
        assert_eq!(store.decode_region(&name, &region).unwrap(), full);
    }
    // second pass over every field is all cache hits
    let before = store.stats();
    for e in store.reader().entries() {
        store.decode_field(&e.name).unwrap();
    }
    let after = store.stats();
    assert_eq!(after.misses, before.misses, "v1 fields must cache too");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cache-on and cache-off stores (and the plain reader) decode the
    /// same bytes for arbitrary geometry, chunking, and regions.
    #[test]
    fn cached_and_uncached_stores_decode_identically(
        rows in 8usize..32,
        cols in 4usize..16,
        chunk_rows in 1usize..10,
        r0f in 0u32..1000, r1f in 0u32..1000,
        c0f in 0u32..1000, c1f in 0u32..1000,
        capacity_blocks in 0usize..4,
    ) {
        let shape = Shape::d2(rows, cols);
        let ds = snapshot(rows, cols);
        let bytes = ArchiveBuilder::relative(1e-3)
            .chunk_elements(chunk_rows * cols)
            .build()
            .write(&ds)
            .expect("write");

        // map fractions to a non-empty in-bounds region
        let pick = |lo: u32, hi: u32, extent: usize| {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let s = (lo as usize * extent) / 1001;
            let e = ((hi as usize * extent) / 1001 + 1).min(extent);
            (s.min(extent - 1), e.max(s + 1))
        };
        let (r0, r1) = pick(r0f, r1f, rows);
        let (c0, c1) = pick(c0f, c1f, cols);
        let region = Region::d2(r0, r1, c0, c1);
        prop_assert!(region.validate(shape).is_ok());

        let uncached = ArchiveStore::new(
            ArchiveReader::new(&bytes).unwrap(),
            StoreConfig::uncached(),
        );
        // capacity from 0 blocks (still uncached) up to a few: eviction
        // behaviour in the middle must never change the samples
        let cached = ArchiveStore::new(
            ArchiveReader::new(&bytes).unwrap(),
            StoreConfig::with_capacity(capacity_blocks * chunk_rows * cols * 4),
        );
        let plain = ArchiveReader::new(&bytes).unwrap();

        for name in ["T", "P", "RH"] {
            let want = plain.decode_region(name, &region).expect("reader");
            // two passes over the cached store: populate, then re-serve
            for _ in 0..2 {
                prop_assert_eq!(&cached.decode_region(name, &region).expect("cached"), &want);
                prop_assert_eq!(&uncached.decode_region(name, &region).expect("uncached"), &want);
            }
        }
        prop_assert_eq!(uncached.stats().hits, 0);
    }
}
