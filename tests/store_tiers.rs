//! Two-tier cache and prefetch behaviour of `ArchiveStore`:
//!
//! * blocks evicted from tier 1 promote back from tier-2 compressed bytes
//!   byte-exactly, without touching the source;
//! * `purge()` / `invalidate_field()` drop cached state so reads after an
//!   in-place repair of the underlying file never serve stale blocks;
//! * a sequential scan triggers speculative readahead whose blocks are
//!   byte-exact and accounted separately from demand traffic;
//! * repeated probes for unknown field names hit the negative name cache.

use std::sync::Arc;

use cross_field_compression::core::archive::{
    ArchiveBuilder, ArchiveReader, ArchiveStore, StoreConfig,
};
use cross_field_compression::core::TrainConfig;
use cross_field_compression::tensor::{Dataset, Field, Region, Shape};

const ROWS: usize = 48;
const COLS: usize = 32;
const CHUNK_ROWS: usize = 6; // 8 blocks per field
const BLOCK_BYTES: usize = CHUNK_ROWS * COLS * 4;

/// Anchor + cross-field target so invalidation cascade is observable.
fn sample_archive() -> Vec<u8> {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES
        .get_or_init(|| {
            let shape = Shape::d2(ROWS, COLS);
            let anchor = Field::from_fn(shape, |i| {
                ((i[0] as f32) * 0.17).sin() * 9.0 + (i[1] as f32) * 0.05 + 300.0
            });
            let target = anchor.map(|v| 0.7 * v - 12.0);
            let mut ds = Dataset::new("TIERS", shape);
            ds.push("A", anchor);
            ds.push("T", target);
            ArchiveBuilder::relative(1e-3)
                .train_config(TrainConfig::fast())
                .cross_field("T", &["A"])
                .chunk_elements(CHUNK_ROWS * COLS)
                .build()
                .write(&ds)
                .expect("archive write")
        })
        .clone()
}

fn reference() -> Dataset {
    ArchiveReader::new(&sample_archive())
        .expect("parse")
        .decode_all()
        .expect("decode")
}

fn block_region(b: usize) -> Region {
    Region::d2(b * CHUNK_ROWS, (b + 1) * CHUNK_ROWS, 0, COLS)
}

#[test]
fn evicted_blocks_promote_from_tier2_byte_exactly() {
    let bytes = sample_archive();
    let want = reference();
    // tier 1 holds ~2 decoded blocks; tier 2 comfortably holds every
    // compressed payload — so a full-field sweep evicts (demoting) and the
    // second sweep re-enters via promotion, never the source
    let store = ArchiveStore::new(
        ArchiveReader::new(&bytes).unwrap(),
        StoreConfig::with_tiers(2 * BLOCK_BYTES, 1 << 20).no_prefetch(),
    );
    assert_eq!(store.decode_field("A").unwrap(), *want.expect_field("A"));
    let after_first = store.snapshot();
    assert!(after_first.evictions > 0, "{after_first:?}");
    assert!(after_first.demotions > 0, "{after_first:?}");
    assert_eq!(after_first.tier2_hits, 0, "first sweep came from source");

    assert_eq!(store.decode_field("A").unwrap(), *want.expect_field("A"));
    let after_second = store.snapshot();
    assert!(
        after_second.tier2_hits > 0 && after_second.promotions > 0,
        "second sweep must promote from tier 2: {after_second:?}"
    );
    assert_eq!(
        after_second.tier2_insertions, after_first.tier2_insertions,
        "promotion must not re-fetch from the source: {after_second:?}"
    );
    assert!(after_second.tier2_hits <= after_second.misses);
}

#[test]
fn zero_tier2_budget_disables_the_tier() {
    let bytes = sample_archive();
    let store = ArchiveStore::new(
        ArchiveReader::new(&bytes).unwrap(),
        StoreConfig::with_tiers(2 * BLOCK_BYTES, 0).no_prefetch(),
    );
    store.decode_field("A").unwrap();
    store.decode_field("A").unwrap();
    let s = store.snapshot();
    assert_eq!(s.tier2_insertions, 0, "{s:?}");
    assert_eq!(s.tier2_hits, 0, "{s:?}");
    assert_eq!(s.tier2_blocks, 0, "{s:?}");
}

/// The post-`cfc-fsck --repair` scenario: the archive file is rewritten
/// in place under a live store. Until `purge()` the store (correctly)
/// serves its cache; after `purge()` nothing stale survives — a strict
/// read sees exactly what is on disk now.
#[test]
fn purge_drops_stale_blocks_after_underlying_file_changes() {
    let bytes = sample_archive();
    let (off, len) = {
        let r = ArchiveReader::new(&bytes).expect("parse");
        r.entries()
            .iter()
            .find(|e| e.name == "A")
            .expect("A")
            .block_span(1)
            .expect("span")
    };
    let path = std::env::temp_dir().join(format!("cfc_store_tiers_{}.cfar", std::process::id()));
    std::fs::write(&path, &bytes).expect("write temp archive");

    let store = ArchiveStore::open(
        std::fs::File::open(&path).expect("open"),
        StoreConfig::default().no_prefetch(),
    )
    .expect("parse");
    let clean = store.decode_region("A", &block_region(1)).expect("clean");

    // corrupt the block on disk, under the live store
    let flip = |xor: u8| {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .expect("reopen");
        f.seek(SeekFrom::Start(off + len as u64 / 2)).expect("seek");
        let mut b = [0u8];
        use std::io::Read;
        f.read_exact(&mut b).expect("read byte");
        b[0] ^= xor;
        f.seek(SeekFrom::Start(off + len as u64 / 2)).expect("seek");
        f.write_all(&b).expect("write byte");
    };
    flip(0x20);

    // both cache tiers still hold the pre-corruption decode
    assert_eq!(
        store.decode_region("A", &block_region(1)).expect("cached"),
        clean,
        "before purge the cache legitimately serves the old bytes"
    );

    store.purge();
    let err = store
        .decode_region("A", &block_region(1))
        .expect_err("post-purge read must see the corrupt bytes on disk");
    assert!(err.to_string().contains('A'), "{err}");
    let s = store.snapshot();
    assert_eq!(s.cached_blocks, 0, "purge must empty tier 1: {s:?}");
    assert_eq!(s.tier2_blocks, 0, "purge must empty tier 2: {s:?}");

    // "repair" the file and purge again: reads are clean and match
    flip(0x20);
    store.purge();
    assert_eq!(
        store
            .decode_region("A", &block_region(1))
            .expect("repaired"),
        clean
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn invalidate_field_cascades_to_dependent_targets() {
    let bytes = sample_archive();
    let store = ArchiveStore::new(
        ArchiveReader::new(&bytes).unwrap(),
        StoreConfig::default().no_prefetch(),
    );
    // T is anchored on A: decoding T caches blocks of both fields
    store.decode_region("T", &block_region(0)).unwrap();
    let warm = store.snapshot();
    assert!(warm.cached_blocks >= 2, "{warm:?}");

    // invalidating the *anchor* must also drop the target's blocks, which
    // were decoded against it
    store.invalidate_field("A").unwrap();
    let s = store.snapshot();
    assert_eq!(s.cached_blocks, 0, "A and its dependent T must drop: {s:?}");
    assert_eq!(s.tier2_blocks, 0, "both tiers drop: {s:?}");

    // next read is a fresh decode, and still correct
    let misses_before = s.misses;
    let got = store.decode_region("T", &block_region(0)).unwrap();
    assert_eq!(got, reference().expect_field("T").crop(&block_region(0)));
    assert!(store.snapshot().misses > misses_before);

    assert!(store.invalidate_field("nope").is_err());
}

#[test]
fn sequential_scan_prefetches_ahead_byte_exactly() {
    let bytes = sample_archive();
    let want = reference();
    let store = Arc::new(ArchiveStore::new(
        ArchiveReader::new(&bytes).unwrap(),
        StoreConfig::default(), // prefetch on: depth 4, 2 workers
    ));
    // two consecutive single-block windows establish the scan...
    store.decode_region("A", &block_region(0)).unwrap();
    store.decode_region("A", &block_region(1)).unwrap();
    store.prefetch_quiesce();
    let s = store.snapshot();
    assert!(s.prefetch_issued > 0, "scan must trigger readahead: {s:?}");
    assert!(s.prefetched_blocks > 0, "workers must decode: {s:?}");

    // ...so the next windows are already decoded: demand reads hit
    let misses_before = s.misses;
    for b in 2..5 {
        let got = store.decode_region("A", &block_region(b)).unwrap();
        assert_eq!(
            got,
            want.expect_field("A").crop(&block_region(b)),
            "prefetched block {b} must be byte-exact"
        );
    }
    let s = store.snapshot();
    assert_eq!(s.misses, misses_before, "scan body must be all hits: {s:?}");
    assert!(s.prefetch_hits > 0, "{s:?}");
    assert!(s.prefetch_hits <= s.prefetched_blocks, "{s:?}");
    assert!(s.insertions <= s.misses + s.prefetched_blocks, "{s:?}");
}

#[test]
fn unknown_field_probes_hit_the_negative_cache() {
    let bytes = sample_archive();
    let store = ArchiveStore::new(ArchiveReader::new(&bytes).unwrap(), StoreConfig::default());
    let e1 = store.decode_block("missing", 0).expect_err("unknown");
    assert_eq!(store.snapshot().negative_hits, 0, "first probe builds");
    let e2 = store.decode_block("missing", 0).expect_err("unknown");
    assert_eq!(e1.to_string(), e2.to_string());
    assert_eq!(store.snapshot().negative_hits, 1, "second probe hits");
    // known fields never go near the negative path
    store.decode_region("A", &block_region(0)).unwrap();
    assert_eq!(store.snapshot().negative_hits, 1);
}
