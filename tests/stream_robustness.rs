//! Stream-format robustness: corrupt and truncated inputs must fail loudly
//! (panic with a diagnostic), never decode garbage silently.

use cross_field_compression::sz::stream::{Container, SectionTag};
use cross_field_compression::sz::SzCompressor;
use cross_field_compression::tensor::{Field, Shape};

fn sample_stream() -> (SzCompressor, Vec<u8>, Field) {
    let f = Field::from_fn(Shape::d2(24, 24), |idx| {
        ((idx[0] as f32) * 0.2).sin() * 10.0 + idx[1] as f32 * 0.1
    });
    let c = SzCompressor::baseline(1e-3);
    let bytes = c.compress(&f).bytes;
    (c, bytes, f)
}

#[test]
fn valid_stream_decodes() {
    let (c, bytes, f) = sample_stream();
    let dec = c.decompress(&bytes);
    assert_eq!(dec.shape(), f.shape());
}

#[test]
#[should_panic(expected = "bad magic")]
fn corrupt_magic_rejected() {
    let (c, mut bytes, _) = sample_stream();
    bytes[0] ^= 0xFF;
    let _ = c.decompress(&bytes);
}

#[test]
#[should_panic]
fn truncated_stream_rejected() {
    let (c, bytes, _) = sample_stream();
    let _ = c.decompress(&bytes[..bytes.len() / 2]);
}

#[test]
#[should_panic]
fn corrupted_section_length_rejected() {
    let (c, mut bytes, _) = sample_stream();
    // blow up the first section length field (just after the fixed header)
    let header = 4 + 2 + 1 + 8 * 2 + 8 + 4 + 2 + 1;
    bytes[header] = 0xFF;
    bytes[header + 7] = 0x7F;
    let _ = c.decompress(&bytes);
}

#[test]
fn container_preserves_unknown_future_sections() {
    let mut c = Container::new(Shape::d1(4), 1e-3, 512);
    c.push(SectionTag::Residuals, vec![1, 2, 3]);
    c.sections.push((200u8, vec![9, 9, 9])); // unknown tag
    let c2 = Container::from_bytes(&c.to_bytes());
    assert_eq!(c2.sections.len(), 2);
    assert_eq!(c2.sections[1], (200u8, vec![9, 9, 9]));
}

#[test]
#[should_panic(expected = "unsupported stream version")]
fn future_version_rejected() {
    let c = Container::new(Shape::d1(4), 1e-3, 512);
    let mut bytes = c.to_bytes();
    bytes[4] = 99; // version field
    let _ = Container::from_bytes(&bytes);
}

#[test]
fn mismatched_decoder_predictor_is_detected_or_bounded() {
    // decompressing a Lorenzo stream with a regression-configured compressor
    // must fail loudly (missing side-info section)
    let (_, bytes, _) = sample_stream();
    let wrong = SzCompressor {
        predictor: cross_field_compression::sz::PredictorKind::Regression { block: 6 },
        ..SzCompressor::baseline(1e-3)
    };
    let result = std::panic::catch_unwind(|| wrong.decompress(&bytes));
    assert!(result.is_err(), "must not silently decode with the wrong predictor");
}
