//! Stream-format robustness: the decode path is *total*. Corrupt,
//! truncated, bit-flipped, wrong-magic, and future-version inputs must
//! return `Err(CfcError)` — never panic, never decode garbage silently —
//! through both the baseline [`SzCompressor`] and the archive reader.

use cross_field_compression::core::archive::{ArchiveBuilder, ArchiveReader, DecodePolicy};
use cross_field_compression::core::config::{CfnnSpec, TrainConfig};
use cross_field_compression::core::pipeline::{CrossFieldCodec, CrossFieldCompressor};
use cross_field_compression::core::train::train_cfnn;
use cross_field_compression::sz::stream::{Container, SectionTag};
use cross_field_compression::sz::{CfcError, Codec, SzCompressor};
use cross_field_compression::tensor::{Dataset, Field, Shape};

fn sample_field() -> Field {
    Field::from_fn(Shape::d2(24, 24), |idx| {
        ((idx[0] as f32) * 0.2).sin() * 10.0 + idx[1] as f32 * 0.1
    })
}

fn sample_stream() -> (SzCompressor, Vec<u8>, Field) {
    let f = sample_field();
    let c = SzCompressor::baseline(1e-3);
    let bytes = c.compress(&f).expect("compress").bytes;
    (c, bytes, f)
}

fn sample_archive() -> (Vec<u8>, Dataset) {
    let shape = Shape::d2(24, 24);
    let anchor = sample_field();
    let target = anchor.map(|v| 0.8 * v + 2.0);
    let mut ds = Dataset::new("ROBUST", shape);
    ds.push("A", anchor);
    ds.push("T", target);
    // chunked: 6 rows per block → 4 blocks per field, so the sweeps below
    // also cover the v2 block index and per-block streams
    let bytes = ArchiveBuilder::relative(1e-3)
        .train_config(TrainConfig::fast())
        .cross_field("T", &["A"])
        .chunk_elements(6 * 24)
        .build()
        .write(&ds)
        .expect("archive write");
    (bytes, ds)
}

#[test]
fn valid_stream_decodes() {
    let (c, bytes, f) = sample_stream();
    let dec = c.decompress(&bytes).expect("valid stream");
    assert_eq!(dec.shape(), f.shape());
}

#[test]
fn corrupt_magic_rejected() {
    let (c, mut bytes, _) = sample_stream();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        c.decompress(&bytes),
        Err(CfcError::BadMagic { .. })
    ));
}

#[test]
fn future_version_rejected() {
    let (c, mut bytes, _) = sample_stream();
    bytes[4] = 99;
    assert!(matches!(
        c.decompress(&bytes),
        Err(CfcError::UnsupportedVersion { found: 99, .. })
    ));
}

#[test]
fn truncation_at_every_length_rejected() {
    // every proper prefix must produce Err — never panic, never Ok
    let (c, bytes, _) = sample_stream();
    for cut in 0..bytes.len() {
        let res = std::panic::catch_unwind(|| c.decompress(&bytes[..cut]));
        match res {
            Ok(Err(_)) => {}
            Ok(Ok(_)) => panic!("prefix of {cut} bytes decoded successfully"),
            Err(_) => panic!("prefix of {cut} bytes panicked"),
        }
    }
}

#[test]
fn corrupted_section_length_rejected() {
    let (c, mut bytes, _) = sample_stream();
    // blow up the first section length field (just after the fixed header)
    let header = 4 + 2 + 1 + 8 * 2 + 8 + 4 + 2 + 1;
    bytes[header] = 0xFF;
    bytes[header + 7] = 0x7F;
    assert!(c.decompress(&bytes).is_err());
}

#[test]
fn every_single_byte_flip_is_err_or_ok_never_panic() {
    // exhaustive single-byte corruption: each position flipped must either
    // surface as Err or decode to *something* — but must never panic
    let (c, bytes, _) = sample_stream();
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 0xFF;
        let res = std::panic::catch_unwind(|| c.decompress(&bad));
        assert!(res.is_ok(), "byte flip at {pos} panicked");
    }
}

#[test]
fn random_garbage_never_panics() {
    // deterministic pseudo-random buffers straight into the decoder
    let c = SzCompressor::baseline(1e-3);
    let mut x = 0x0123_4567_89AB_CDEFu64;
    for len in [0usize, 1, 3, 17, 64, 256, 1024, 4096] {
        let buf: Vec<u8> = (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 48) as u8
            })
            .collect();
        let res = std::panic::catch_unwind(|| c.decompress(&buf));
        assert!(res.is_ok(), "garbage of len {len} panicked");
        // a random buffer without the magic can never decode successfully
        if len < 4 || &buf[..4] != b"CFSZ" {
            assert!(res.unwrap().is_err());
        }
    }
}

#[test]
fn container_preserves_unknown_future_sections() {
    let mut c = Container::new(Shape::d1(4), 1e-3, 512);
    c.push(SectionTag::Residuals, vec![1, 2, 3]);
    c.sections.push((200u8, vec![9, 9, 9])); // unknown tag
    let c2 = Container::try_from_bytes(&c.to_bytes()).expect("roundtrip");
    assert_eq!(c2.sections.len(), 2);
    assert_eq!(c2.sections[1], (200u8, vec![9, 9, 9]));
}

#[test]
fn mismatched_decoder_predictor_is_an_error() {
    // decompressing a Lorenzo stream with a regression-configured compressor
    // must fail cleanly (missing side-info section)
    let (_, bytes, _) = sample_stream();
    let wrong = SzCompressor {
        predictor: cross_field_compression::sz::PredictorKind::Regression { block: 6 },
        ..SzCompressor::baseline(1e-3)
    };
    assert!(
        matches!(
            wrong.decompress(&bytes),
            Err(CfcError::MissingSection { .. })
        ),
        "must not silently decode with the wrong predictor"
    );
}

#[test]
fn cross_field_codec_survives_bit_flips() {
    let anchor = sample_field();
    let target = anchor.map(|v| 1.1 * v - 3.0);
    let comp = CrossFieldCompressor::new(1e-3);
    let anchor_dec = comp.roundtrip_anchor(&anchor).expect("anchor roundtrip");
    let spec = CfnnSpec::compact(1, 2);
    let trained = train_cfnn(&spec, &TrainConfig::fast(), &[&anchor], &target);
    let codec = CrossFieldCodec::new(comp, trained, vec![anchor_dec]);
    let bytes = codec.compress(&target).expect("compress").bytes;
    // valid stream decodes
    assert!(codec.decompress(&bytes).is_ok());
    // flips across the stream (header, residuals, embedded model, weights)
    for pos in (0..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0xFF;
        let res = std::panic::catch_unwind(|| codec.decompress(&bad));
        assert!(res.is_ok(), "cross-field byte flip at {pos} panicked");
    }
    // truncations too
    for cut in (0..bytes.len()).step_by(13) {
        let res = std::panic::catch_unwind(|| codec.decompress(&bytes[..cut]));
        assert!(
            matches!(res, Ok(Err(_))),
            "cross-field truncation at {cut} must be Err"
        );
    }
}

#[test]
fn archive_wrong_magic_and_version_rejected() {
    let (bytes, _) = sample_archive();
    let mut bad = bytes.clone();
    bad[0] = b'X';
    assert!(matches!(
        ArchiveReader::new(&bad),
        Err(CfcError::BadMagic { .. })
    ));
    let mut bad = bytes.clone();
    bad[4] = 0x7F;
    assert!(matches!(
        ArchiveReader::new(&bad),
        Err(CfcError::UnsupportedVersion { .. })
    ));
}

#[test]
fn archive_truncation_never_panics() {
    let (bytes, _) = sample_archive();
    for cut in 0..bytes.len() {
        let res = std::panic::catch_unwind(|| match ArchiveReader::new(&bytes[..cut]) {
            Ok(r) => r.decode_all().map(|_| ()),
            Err(e) => Err(e),
        });
        match res {
            Ok(Err(_)) => {}
            Ok(Ok(())) => panic!("archive prefix of {cut} bytes decoded fully"),
            Err(_) => panic!("archive prefix of {cut} bytes panicked"),
        }
    }
}

#[test]
fn archive_bit_flips_never_panic() {
    let (bytes, ds) = sample_archive();
    for pos in (0..bytes.len()).step_by(5) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0xFF;
        let res = std::panic::catch_unwind(|| {
            ArchiveReader::new(&bad).and_then(|r| r.decode_all().map(|_| ()))
        });
        assert!(res.is_ok(), "archive byte flip at {pos} panicked");
    }
    // and the pristine archive still round-trips
    let dec = ArchiveReader::new(&bytes).unwrap().decode_all().unwrap();
    assert_eq!(dec.field_names(), ds.field_names());
}

#[test]
fn archive_chunked_manifest_records_blocks() {
    let (bytes, _) = sample_archive();
    let reader = ArchiveReader::new(&bytes).expect("parse");
    assert_eq!(reader.version(), 2);
    for e in reader.entries() {
        assert_eq!(e.n_blocks(), 4, "{}", e.name);
    }
}

#[test]
fn archive_truncated_block_index_rejected() {
    let (bytes, _) = sample_archive();
    let reader = ArchiveReader::new(&bytes).expect("parse");
    let e = &reader.entries()[0];
    // the block index (20 bytes/block) sits immediately before the payload;
    // baseline entries carry no meta, so block 0's span starts the payload
    let payload_base = e.block_span(0).expect("span").0 as usize;
    let index_start = payload_base - 20 * e.n_blocks();
    // cut the file in the middle of the index: parse must fail cleanly
    for cut in [index_start + 1, index_start + 19, payload_base - 1] {
        let res = std::panic::catch_unwind(|| ArchiveReader::new(&bytes[..cut]));
        match res {
            Ok(Err(_)) => {}
            Ok(Ok(_)) => panic!("archive cut inside the block index parsed"),
            Err(_) => panic!("archive cut inside the block index panicked"),
        }
    }
}

#[test]
fn archive_index_offsets_past_eof_rejected() {
    let (bytes, _) = sample_archive();
    let reader = ArchiveReader::new(&bytes).expect("parse");
    let e = &reader.entries()[0];
    let payload_base = e.block_span(0).expect("span").0 as usize;
    let index_start = payload_base - 20 * e.n_blocks();

    // block 0's rel_offset → far past the payload (and the file)
    let mut bad = bytes.clone();
    bad[index_start..index_start + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    assert!(
        matches!(ArchiveReader::new(&bad), Err(CfcError::Corrupt { .. })),
        "offset past payload must be a typed parse error"
    );

    // block 0's length → past EOF
    let mut bad = bytes.clone();
    bad[index_start + 8..index_start + 16].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    assert!(ArchiveReader::new(&bad).is_err());

    // the field's payload length itself → past EOF
    let payload_len_at = index_start - 8;
    let mut bad = bytes.clone();
    bad[payload_len_at..payload_len_at + 8].copy_from_slice(&(u64::MAX / 4).to_le_bytes());
    assert!(
        matches!(ArchiveReader::new(&bad), Err(CfcError::Truncated { .. })),
        "payload pointing past EOF must be a typed parse error"
    );
}

#[test]
fn archive_v1_fixture_truncation_and_flips_never_panic() {
    // the legacy container's read path gets the same sweeps as v2
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/small_v1.cfar");
    let bytes = std::fs::read(path).expect("v1 fixture");
    assert_eq!(ArchiveReader::new(&bytes).unwrap().version(), 1);
    for cut in (0..bytes.len()).step_by(61) {
        let res = std::panic::catch_unwind(|| match ArchiveReader::new(&bytes[..cut]) {
            Ok(r) => r.decode_all().map(|_| ()),
            Err(e) => Err(e),
        });
        match res {
            Ok(Err(_)) => {}
            Ok(Ok(())) => panic!("v1 prefix of {cut} bytes decoded fully"),
            Err(_) => panic!("v1 prefix of {cut} bytes panicked"),
        }
    }
    for pos in (0..bytes.len()).step_by(17) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0xFF;
        let res = std::panic::catch_unwind(|| {
            ArchiveReader::new(&bad).and_then(|r| r.decode_all().map(|_| ()))
        });
        assert!(res.is_ok(), "v1 byte flip at {pos} panicked");
    }
}

#[test]
fn archive_garbage_after_valid_toc_is_contained() {
    // random bytes straight into the archive parser
    let mut x = 0xDEAD_BEEF_1234_5678u64;
    for len in [0usize, 1, 5, 21, 100, 512, 2048] {
        let buf: Vec<u8> = (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 40) as u8
            })
            .collect();
        let res = std::panic::catch_unwind(|| ArchiveReader::new(&buf).map(|_| ()));
        assert!(res.is_ok(), "garbage of len {len} panicked");
        if len < 4 || &buf[..4] != b"CFAR" {
            assert!(res.unwrap().is_err());
        }
    }
}

/// Corruption sweep over every `(field, block)`: with exactly that block's
/// payload flipped, Strict decode fails with a typed error naming the
/// field and block, and Salvage decode recovers **every other block
/// byte-for-byte** while reporting exactly the corrupted block.
#[test]
fn salvage_sweep_recovers_every_healthy_block() {
    let (bytes, _) = sample_archive();
    let reader = ArchiveReader::new(&bytes).expect("parse");
    let clean = reader.decode_all().expect("clean decode");
    let rows_per_block = 6;
    let cols = 24;
    let spans: Vec<(String, usize, u64, usize)> = reader
        .entries()
        .iter()
        .flat_map(|e| {
            (0..e.n_blocks()).map(move |b| {
                let (off, len) = e.block_span(b).expect("span");
                (e.name.clone(), b, off, len)
            })
        })
        .collect();
    assert_eq!(spans.len(), 8, "2 fields × 4 blocks");

    for (name, b, off, len) in &spans {
        let mut bad = bytes.clone();
        bad[*off as usize + len / 2] ^= 0x01;
        let r = ArchiveReader::new(&bad).expect("manifest still parses");

        let err = r
            .decode_field(name)
            .expect_err("strict decode of a corrupt block must fail");
        match &err {
            CfcError::InField { field, block, .. } => {
                assert_eq!(field, name, "error must name the damaged field");
                assert_eq!(*block, Some(*b), "error must name the damaged block");
            }
            other => panic!("expected InField, got {other}"),
        }

        let s = r
            .decode_field_policy(name, DecodePolicy::Salvage { fill: f32::NAN })
            .expect("salvage decode");
        assert_eq!(s.damage.blocks_of(name), vec![*b], "{name}[{b}]");
        assert_eq!(s.damage.len(), 1, "exactly one damaged location");
        let want = clean.expect_field(name);
        for k in 0..4usize {
            let lo = k * rows_per_block * cols;
            let hi = lo + rows_per_block * cols;
            if k == *b {
                assert!(
                    s.data.as_slice()[lo..hi].iter().all(|v| v.is_nan()),
                    "{name}[{k}] must be pure fill"
                );
            } else {
                assert!(
                    s.data.as_slice()[lo..hi]
                        .iter()
                        .zip(&want.as_slice()[lo..hi])
                        .all(|(a, w)| a.to_bits() == w.to_bits()),
                    "{name}[{k}] must be byte-identical with {name}[{b}] corrupt"
                );
            }
        }
    }
}

/// Corrupting an *anchor* block under salvage cascades: the target's
/// matching block is filled too, attributed to the anchor, and every
/// other target block still decodes byte-for-byte.
#[test]
fn salvage_cascades_anchor_damage_to_targets() {
    let (bytes, _) = sample_archive();
    let reader = ArchiveReader::new(&bytes).expect("parse");
    let clean = reader.decode_all().expect("clean decode");
    let a = reader
        .entries()
        .iter()
        .find(|e| e.name == "A")
        .expect("anchor entry");
    let (off, len) = a.block_span(2).expect("span");
    let mut bad = bytes.clone();
    bad[off as usize + len / 2] ^= 0x08;

    let r = ArchiveReader::new(&bad).expect("manifest parses");
    let s = r
        .decode_field_policy("T", DecodePolicy::salvage())
        .expect("salvage decode of the dependent target");
    assert_eq!(s.damage.blocks_of("T"), vec![2]);
    assert_eq!(s.damage.blocks_of("A"), vec![2], "root damage recorded too");
    let t2 = s
        .damage
        .iter()
        .find(|d| d.field == "T" && d.block == 2)
        .expect("target damage entry");
    assert_eq!(
        t2.cascaded_from.as_deref(),
        Some("A"),
        "target damage must name the corrupt anchor"
    );
    assert_eq!(s.damage.summary(), "A:2;T:2");

    let want = clean.expect_field("T");
    let span = 6 * 24;
    for k in [0usize, 1, 3] {
        assert!(
            s.data.as_slice()[k * span..(k + 1) * span]
                .iter()
                .zip(&want.as_slice()[k * span..(k + 1) * span])
                .all(|(x, w)| x.to_bits() == w.to_bits()),
            "T[{k}] must survive A[2] corruption byte-for-byte"
        );
    }
    assert!(s.data.as_slice()[2 * span..3 * span]
        .iter()
        .all(|v| *v == 0.0));
}

/// Several blocks corrupted at once: salvage reports exactly that set and
/// the complement decodes byte-for-byte.
#[test]
fn salvage_reports_exactly_the_corrupted_set() {
    let (bytes, _) = sample_archive();
    let reader = ArchiveReader::new(&bytes).expect("parse");
    let clean = reader.decode_all().expect("clean decode");
    let t = reader
        .entries()
        .iter()
        .find(|e| e.name == "T")
        .expect("target entry");
    let mut bad = bytes.clone();
    for b in [0usize, 2] {
        let (off, len) = t.block_span(b).expect("span");
        bad[off as usize + len / 3] ^= 0x20;
    }

    let r = ArchiveReader::new(&bad).expect("manifest parses");
    let s = r
        .decode_field_policy("T", DecodePolicy::salvage())
        .expect("salvage decode");
    assert_eq!(s.damage.blocks_of("T"), vec![0, 2]);
    assert_eq!(s.damage.len(), 2);
    let want = clean.expect_field("T");
    let span = 6 * 24;
    for k in [1usize, 3] {
        assert!(
            s.data.as_slice()[k * span..(k + 1) * span]
                .iter()
                .zip(&want.as_slice()[k * span..(k + 1) * span])
                .all(|(x, w)| x.to_bits() == w.to_bits()),
            "healthy T[{k}] must be byte-identical"
        );
    }
}

#[test]
fn archive_decodes_with_no_out_of_band_configuration() {
    // the reader gets nothing but bytes: no bound, no roles, no specs
    let (bytes, ds) = sample_archive();
    let reader = ArchiveReader::new(&bytes).expect("parse");
    let dec = reader.decode_all().expect("decode");
    for entry in reader.entries() {
        let orig = ds.expect_field(&entry.name);
        let got = dec.expect_field(&entry.name);
        for (a, b) in orig.as_slice().iter().zip(got.as_slice()) {
            assert!(
                ((a - b).abs() as f64) <= entry.eb_abs * (1.0 + 1e-9),
                "{}: |{a} − {b}| > {}",
                entry.name,
                entry.eb_abs
            );
        }
    }
}

#[test]
fn v3_meta_corruption_sweep_is_typed_not_garbled() {
    // Small temporal archive: 3 epochs at keyframe interval 2, so the
    // sweep covers both CRC-protected meta kinds — the epoch-0 target's
    // embedded model and a delta epoch's temporal hybrid weights.
    let shape = Shape::d2(24, 24);
    let snapshots: Vec<Dataset> = (0..3)
        .map(|t| {
            let a = Field::from_fn(shape, |idx| {
                ((idx[0] as f32) * 0.2 + 0.05 * t as f32).sin() * 10.0
                    + idx[1] as f32 * 0.1
                    + 0.3 * t as f32
            });
            let target = a.map(|v| 0.8 * v + 2.0);
            let mut ds = Dataset::new("ROBUST_V3", shape);
            ds.push("A", a);
            ds.push("T", target);
            ds
        })
        .collect();
    let bytes = ArchiveBuilder::relative(1e-3)
        .train_config(TrainConfig::fast())
        .cross_field("T", &["A"])
        .chunk_elements(6 * 24)
        .keyframe_interval(2)
        .build()
        .write_epochs(&snapshots)
        .expect("v3 write");

    let reader = ArchiveReader::new(&bytes).expect("parse");
    assert_eq!(reader.version(), 3);
    // (display name, plain name, epoch, meta start, meta len) for every
    // entry that carries a meta area — blocks start right after it
    let metas: Vec<(String, String, usize, usize, usize)> = reader
        .entries()
        .iter()
        .filter(|e| e.meta_len() > 0)
        .map(|e| {
            let (b0, _) = e.block_span(0).expect("block 0 span");
            (
                e.qualified_name(),
                e.name.clone(),
                e.epoch,
                b0 as usize - e.meta_len(),
                e.meta_len(),
            )
        })
        .collect();
    assert!(
        metas.iter().any(|m| m.2 == 0) && metas.iter().any(|m| m.2 > 0),
        "sweep must cover a keyframe model and a delta's hybrid weights"
    );
    drop(reader);

    for (qualified, name, epoch, start, len) in metas {
        // every byte of the small delta metas; stride through the larger
        // embedded-model meta so the sweep stays fast
        let stride = (len / 64).max(1);
        for off in (0..len).step_by(stride) {
            let mut bad = bytes.clone();
            bad[start + off] ^= 0x01;
            let reader = ArchiveReader::new(&bad).expect("TOC is untouched");

            // strict decode: the typed checksum error, never garbled data
            let err = reader
                .decode_field_at(&name, epoch)
                .expect_err("meta flip must not decode");
            assert!(
                matches!(
                    err.root_cause(),
                    CfcError::ChecksumMismatch {
                        context: "archive field meta",
                        ..
                    }
                ),
                "{qualified} meta byte {off}: wrong error {err:?}"
            );

            // salvage decode: total, with every block of the field damaged
            let s = reader
                .decode_field_policy_at(&name, epoch, DecodePolicy::salvage())
                .expect("salvage never fails on payload rot");
            assert_eq!(
                s.damage.blocks_of(&qualified).len(),
                4,
                "{qualified} meta byte {off}: all 4 blocks must be damaged"
            );
        }
    }
}
