//! Property tests for the v3 temporal-archive semantics:
//!
//! * decoding epoch *t* through its delta chain is **bit-identical** to
//!   decoding an independently-encoded single-snapshot archive of the same
//!   data — the temporal predictor changes how residuals are priced, never
//!   what values reconstruct;
//! * that equivalence holds across the whole keyframe-interval range
//!   (every-epoch keyframes, mid-range chains, one keyframe for the whole
//!   series);
//! * random access to one block of one epoch reads only the covering
//!   keyframe plus the delta chain back to it — counted at the source, so
//!   a regression that silently pulls extra blocks (or whole epochs) fails
//!   here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use cross_field_compression::core::archive::{ArchiveBuilder, ArchiveReader, ArchiveSource};
use cross_field_compression::tensor::{Dataset, Field, Region, Shape};

/// One epoch of a deterministic evolving snapshot: two coupled fields with
/// phase drift, so consecutive epochs differ by a small smooth increment.
fn epoch_snapshot(shape: Shape, t: f32, k0: f32, k1: f32) -> Dataset {
    let a = Field::from_fn(shape, |i| {
        let x = i[0] as f32 * (0.06 + k0 * 0.01) + 0.05 * t;
        let y = i[1] as f32 * (0.04 + k1 * 0.01) - 0.03 * t;
        x.sin() * 12.0 + y.cos() * 6.0 + 40.0 + 0.4 * t
    });
    let b = a.map(|v| 0.7 * v - 3.0);
    let mut ds = Dataset::new("TPROP", shape);
    ds.push("A", a);
    ds.push("B", b);
    ds
}

fn epoch_snapshots(shape: Shape, n: usize, k0: f32, k1: f32) -> Vec<Dataset> {
    (0..n)
        .map(|e| epoch_snapshot(shape, e as f32, k0, k1))
        .collect()
}

/// Plan-free builder shared by the temporal and the independent encodes —
/// same bound, same chunking, so decoded values must agree bit-for-bit.
fn builder(chunk_rows: usize, cols: usize) -> ArchiveBuilder {
    ArchiveBuilder::relative(1e-3).chunk_elements(chunk_rows * cols)
}

/// Decode every epoch of each snapshot encoded *alone* (a v2 archive):
/// the ground truth the delta chains are measured against.
fn independent_decodes(snapshots: &[Dataset], chunk_rows: usize, cols: usize) -> Vec<Dataset> {
    snapshots
        .iter()
        .map(|ds| {
            let bytes = builder(chunk_rows, cols)
                .build()
                .write(ds)
                .expect("v2 write");
            ArchiveReader::new(&bytes)
                .expect("parse v2")
                .decode_all()
                .expect("decode v2")
        })
        .collect()
}

fn assert_epochs_match<R: ArchiveSource>(
    reader: &ArchiveReader<R>,
    want: &[Dataset],
) -> Result<(), TestCaseError> {
    for (t, w) in want.iter().enumerate() {
        let dec = reader.decode_epoch(t).expect("decode epoch");
        for name in ["A", "B"] {
            prop_assert_eq!(
                dec.expect_field(name).as_slice(),
                w.expect_field(name).as_slice(),
                "epoch {} field {} diverged from the independent encode",
                t,
                name
            );
        }
    }
    Ok(())
}

/// [`ArchiveSource`] wrapper that counts every byte actually read.
struct CountingReader<R> {
    inner: R,
    read: Arc<AtomicU64>,
}

impl<R: ArchiveSource> ArchiveSource for CountingReader<R> {
    fn len(&self) -> std::io::Result<u64> {
        self.inner.len()
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        self.inner.read_exact_at(offset, buf)?;
        self.read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Delta-chain decode of epoch t ≡ the independently-encoded snapshot
    /// t, for random shapes, chunkings, and keyframe intervals.
    #[test]
    fn delta_chain_decode_equals_independent_snapshot(
        rows in 10usize..28,
        cols in 6usize..14,
        chunk_rows in 2usize..6,
        n_epochs in 3usize..7,
        interval in 2usize..5,
        k0 in 0u32..8, k1 in 0u32..8,
    ) {
        let shape = Shape::d2(rows, cols);
        let snapshots = epoch_snapshots(shape, n_epochs, k0 as f32, k1 as f32);
        let want = independent_decodes(&snapshots, chunk_rows, cols);

        let bytes = builder(chunk_rows, cols)
            .keyframe_interval(interval)
            .build()
            .write_epochs(&snapshots)
            .expect("v3 write");
        let reader = ArchiveReader::new(&bytes).expect("parse v3");
        prop_assert_eq!(reader.version(), 3);
        prop_assert_eq!(reader.n_epochs(), n_epochs);
        assert_epochs_match(&reader, &want)?;
    }

    /// The same equivalence across the interval extremes: keyframe-only
    /// (interval 1), a mid-range chain (3), and one keyframe heading the
    /// entire series (interval ≥ n_epochs).
    #[test]
    fn keyframe_interval_sweep_roundtrips_bit_exactly(
        rows in 10usize..24,
        cols in 6usize..12,
        chunk_rows in 2usize..5,
        n_epochs in 4usize..7,
        k0 in 0u32..8, k1 in 0u32..8,
    ) {
        let shape = Shape::d2(rows, cols);
        let snapshots = epoch_snapshots(shape, n_epochs, k0 as f32, k1 as f32);
        let want = independent_decodes(&snapshots, chunk_rows, cols);

        for interval in [1, 3, n_epochs] {
            let bytes = builder(chunk_rows, cols)
                .keyframe_interval(interval)
                .build()
                .write_epochs(&snapshots)
                .expect("v3 write");
            let reader = ArchiveReader::new(&bytes).expect("parse v3");
            prop_assert_eq!(reader.keyframe_interval(), interval);
            assert_epochs_match(&reader, &want)?;
        }
    }

    /// Random access to one block of one epoch touches only the covering
    /// keyframe + delta chain: the payload bytes read are bounded by the
    /// meta and block spans of exactly those `t % interval + 1 ≤ interval`
    /// entries — never another block, field, or epoch.
    #[test]
    fn epoch_access_reads_only_keyframe_plus_chain(
        rows in 12usize..28,
        cols in 6usize..12,
        chunk_rows in 2usize..5,
        n_epochs in 4usize..8,
        interval in 2usize..5,
        pick_epoch in 0u32..1000,
        pick_block in 0u32..1000,
        k0 in 0u32..8,
    ) {
        let shape = Shape::d2(rows, cols);
        let snapshots = epoch_snapshots(shape, n_epochs, k0 as f32, 3.0);
        let bytes = builder(chunk_rows, cols)
            .keyframe_interval(interval)
            .build()
            .write_epochs(&snapshots)
            .expect("v3 write");

        let plain = ArchiveReader::new(&bytes).expect("parse v3");
        let fields = plain.fields_per_epoch();
        let n_blocks = plain.entries()[0].n_blocks();
        let epoch = pick_epoch as usize % n_epochs;
        let idx = pick_block as usize % n_blocks;
        let keyframe = epoch - epoch % interval;

        // every byte the chain is *allowed* to read: block `idx` plus the
        // field meta of each entry from the covering keyframe to `epoch`
        let allowed: u64 = (keyframe..=epoch)
            .map(|e| {
                let entry = &plain.entries()[e * fields]; // field A
                let (_, len) = entry.block_span(idx).expect("block span");
                entry.meta_len() as u64 + len as u64
            })
            .sum();
        prop_assert!(epoch - keyframe < interval, "chain longer than interval");

        let read = Arc::new(AtomicU64::new(0));
        let src = CountingReader {
            inner: std::io::Cursor::new(bytes.clone()),
            read: Arc::clone(&read),
        };
        let counted = ArchiveReader::open(src).expect("parse counted");
        let toc = read.load(Ordering::Relaxed);
        let got = counted.decode_block_at("A", idx, epoch).expect("block at epoch");
        let payload_bytes = read.load(Ordering::Relaxed) - toc;
        prop_assert!(
            payload_bytes <= allowed,
            "decode_block_at read {} payload bytes; the keyframe + chain \
             only spans {}",
            payload_bytes,
            allowed
        );

        // and the chain decode is the real data, not a shortcut
        let r0 = idx * chunk_rows;
        let r1 = (r0 + chunk_rows).min(rows);
        let want = plain
            .decode_epoch(epoch)
            .expect("decode epoch")
            .expect_field("A")
            .crop(&Region::d2(r0, r1, 0, cols));
        prop_assert_eq!(got, want);
    }
}
